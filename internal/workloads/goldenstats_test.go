package workloads

import (
	"fmt"
	"os"
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/stats"
)

// Golden statistics regression test. The paper's Table II/III counters
// are pinned here for every registered workload at small scale on the
// reference configuration (8 shader cores simulated by 4 host threads),
// so a change to the memory model, scheduler or instrumentation that
// drifts the paper's numbers fails loudly instead of silently.
//
// Workgroups are statically partitioned across virtual cores, so for a
// data-race-free kernel every counter — including the per-core TLB hit
// and walk counts — is exactly reproducible for a fixed HostThreads.
// BFS is the exception *by guest design*: its frontier update races
// benignly (duplicate discoveries store the same value), so the number of
// executed store clauses depends on cross-core timing. Its racy counters
// are pinned as [min, max] windows instead; everything else about it
// (jobs, threads, pages, verification) is exact.
//
// Regenerate after an intentional change with:
//
//	MOBILESIM_GOLDEN=print go test -run TestGoldenStatsAllWorkloads ./internal/workloads/
//
// and paste the emitted table, after convincing yourself the drift is
// intentional and explaining it in the commit message.

// goldenHostThreads is the reference virtual-core count the table is
// recorded at (the acceptance configuration for multi-core runs).
const goldenHostThreads = 4

type goldenStats struct {
	GlobalLS   uint64
	MainMemAcc uint64
	TLBHits    uint64
	TLBWalks   uint64
	Pages      uint64
	Jobs       uint64
	Threads    uint64

	// Slack widens the racy counters' acceptance window for workloads
	// with benign guest races: GlobalLS and MainMemAcc may exceed their
	// pinned floor by up to LSSlack, TLBHits/TLBWalks by up to TLBSlack.
	LSSlack  uint64
	TLBSlack uint64
}

var goldenTable = map[string]goldenStats{
	// BFS races benignly on the frontier (see the package comment): which
	// core wins a racy discovery moves the page's walk between cores
	// (hits and walks trade ±1 with their sum near-fixed at ~21515), and
	// a genuinely concurrent duplicate discovery re-executes the
	// two-store update body (adding hits). The windows are mutually
	// consistent: the hits floor is the sum minus the walks ceiling, so
	// any split the walks window admits keeps hits in range too.
	"BFS":               {GlobalLS: 21488, MainMemAcc: 21488, TLBHits: 21000, TLBWalks: 131, Pages: 11, Jobs: 9, Threads: 9216, LSSlack: 256, TLBSlack: 640},
	"Backprop":          {GlobalLS: 29184, MainMemAcc: 29184, TLBHits: 57525, TLBWalks: 81, Pages: 21, Jobs: 2, Threads: 8192},
	"BinarySearch":      {GlobalLS: 8244, MainMemAcc: 8244, TLBHits: 8162, TLBWalks: 130, Pages: 8, Jobs: 16, Threads: 4096},
	"BinomialOption":    {GlobalLS: 260, MainMemAcc: 260, TLBHits: 40828, TLBWalks: 15, Pages: 7, Jobs: 1, Threads: 256},
	"BitonicSort":       {GlobalLS: 18432, MainMemAcc: 18432, TLBHits: 18360, TLBWalks: 180, Pages: 4, Jobs: 36, Threads: 4608},
	"Cutcp":             {GlobalLS: 132699, MainMemAcc: 132699, TLBHits: 132691, TLBWalks: 11, Pages: 5, Jobs: 1, Threads: 512},
	"DCT":               {GlobalLS: 140288, MainMemAcc: 140288, TLBHits: 140276, TLBWalks: 15, Pages: 6, Jobs: 1, Threads: 1024},
	"DwtHaar1D":         {GlobalLS: 20480, MainMemAcc: 20480, TLBHits: 20400, TLBWalks: 110, Pages: 5, Jobs: 10, Threads: 10240},
	"FloydWarshall":     {GlobalLS: 131072, MainMemAcc: 131072, TLBHits: 130944, TLBWalks: 224, Pages: 4, Jobs: 32, Threads: 32768},
	"MatrixTranspose":   {GlobalLS: 8192, MainMemAcc: 8192, TLBHits: 16360, TLBWalks: 27, Pages: 12, Jobs: 1, Threads: 4096},
	"NearestNeighbor":   {GlobalLS: 3072, MainMemAcc: 3072, TLBHits: 3060, TLBWalks: 15, Pages: 6, Jobs: 1, Threads: 1024},
	"RecursiveGaussian": {GlobalLS: 8128, MainMemAcc: 8128, TLBHits: 8124, TLBWalks: 10, Pages: 9, Jobs: 2, Threads: 64},
	"Reduction":         {GlobalLS: 4129, MainMemAcc: 4129, TLBHits: 21476, TLBWalks: 33, Pages: 9, Jobs: 2, Threads: 4352},
	"SGEMM":             {GlobalLS: 202752, MainMemAcc: 202752, TLBHits: 202724, TLBWalks: 31, Pages: 10, Jobs: 1, Threads: 3072},
	"SPMV":              {GlobalLS: 4408, MainMemAcc: 4408, TLBHits: 4388, TLBWalks: 23, Pages: 8, Jobs: 1, Threads: 256},
	"ScanLargeArrays":   {GlobalLS: 9497, MainMemAcc: 9497, TLBHits: 67067, TLBWalks: 48, Pages: 15, Jobs: 3, Threads: 4352},
	"SobelFilter":       {GlobalLS: 34848, MainMemAcc: 34848, TLBHits: 34840, TLBWalks: 11, Pages: 5, Jobs: 1, Threads: 4096},
	"Stencil":           {GlobalLS: 9440, MainMemAcc: 9440, TLBHits: 9360, TLBWalks: 110, Pages: 5, Jobs: 10, Threads: 2560},
	"URNG":              {GlobalLS: 8192, MainMemAcc: 8192, TLBHits: 8184, TLBWalks: 11, Pages: 5, Jobs: 1, Threads: 4096},
	"clBLAS-SGEMM":      {GlobalLS: 67584, MainMemAcc: 67584, TLBHits: 67572, TLBWalks: 15, Pages: 6, Jobs: 1, Threads: 1024},
}

func collectGoldenStats(t *testing.T, name string) goldenStats {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := gpu.DefaultConfig()
	gcfg.HostThreads = goldenHostThreads
	p, err := platform.New(platform.Config{RAMSize: 256 << 20, GPU: gcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := cl.NewContext(p, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Make(spec.SmallScale).Run(bg, c, name, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("%s: not verified at HostThreads=%d: %v", name, goldenHostThreads, res.VerifyErr)
	}
	gs, sys := p.GPU.Stats()
	return goldenStats{
		GlobalLS:   gs.GlobalLS,
		MainMemAcc: gs.MainMemAcc,
		TLBHits:    sys.TLBHits,
		TLBWalks:   sys.TLBWalks,
		Pages:      sys.PagesAccessed,
		Jobs:       sys.ComputeJobs,
		Threads:    gs.Threads,
	}
}

// TestGoldenStatsEngineInvariance pins the exact-counter contract across
// the three execution engines on real workloads: the full GPU and system
// statistics records of the closure-JIT and warp-batched engines must be
// bit-identical to the interpreter's at the reference HostThreads. (The
// windowed golden table above runs under the default — warp — engine, so
// together the two tests tie all three engines to the pinned goldens
// without any per-engine golden files.)
func TestGoldenStatsEngineInvariance(t *testing.T) {
	for _, name := range []string{"SobelFilter", "Reduction", "BitonicSort"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			run := func(eng gpu.Engine) (stats.GPUStats, stats.SystemStats) {
				spec, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				gcfg := gpu.DefaultConfig()
				gcfg.HostThreads = goldenHostThreads
				gcfg.Engine = eng
				p, err := platform.New(platform.Config{RAMSize: 256 << 20, GPU: gcfg})
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				c, err := cl.NewContext(p, "")
				if err != nil {
					t.Fatal(err)
				}
				res, err := spec.Make(spec.SmallScale).Run(bg, c, name, true)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Verified {
					t.Fatalf("%s under %v: not verified: %v", name, eng, res.VerifyErr)
				}
				gs, sys := p.GPU.Stats()
				// Control-register traffic counts driver polling, which is
				// host-timing dependent and engine-independent.
				sys.CtrlRegReads, sys.CtrlRegWrites = 0, 0
				return gs, sys
			}
			gsRef, sysRef := run(gpu.EngineInterp)
			for _, eng := range []gpu.Engine{gpu.EngineJIT, gpu.EngineWarp} {
				gs, sys := run(eng)
				if gs != gsRef {
					t.Errorf("GPU stats diverged under %v:\ninterp: %+v\n%v: %+v", eng, gsRef, eng, gs)
				}
				if sys != sysRef {
					t.Errorf("system stats diverged under %v:\ninterp: %+v\n%v: %+v", eng, sysRef, eng, sys)
				}
			}
		})
	}
}

func TestGoldenStatsAllWorkloads(t *testing.T) {
	if os.Getenv("MOBILESIM_GOLDEN") == "print" {
		for _, spec := range All() {
			g := collectGoldenStats(t, spec.Name)
			fmt.Printf("\t%q: {GlobalLS: %d, MainMemAcc: %d, TLBHits: %d, TLBWalks: %d, Pages: %d, Jobs: %d, Threads: %d},\n",
				spec.Name, g.GlobalLS, g.MainMemAcc, g.TLBHits, g.TLBWalks, g.Pages, g.Jobs, g.Threads)
		}
		return
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := goldenTable[spec.Name]
			if !ok {
				t.Fatalf("no golden stats pinned for %q — every registered workload must be covered", spec.Name)
			}
			got := collectGoldenStats(t, spec.Name)

			exact := func(field string, got, want uint64) {
				if got != want {
					t.Errorf("%s = %d, want %d", field, got, want)
				}
			}
			windowed := func(field string, got, lo, slack uint64) {
				if got < lo || got > lo+slack {
					t.Errorf("%s = %d, want [%d, %d]", field, got, lo, lo+slack)
				}
			}
			windowed("GlobalLS", got.GlobalLS, want.GlobalLS, want.LSSlack)
			windowed("MainMemAcc", got.MainMemAcc, want.MainMemAcc, want.LSSlack)
			windowed("TLBHits", got.TLBHits, want.TLBHits, want.TLBSlack)
			windowed("TLBWalks", got.TLBWalks, want.TLBWalks, want.TLBSlack)
			exact("PagesAccessed", got.Pages, want.Pages)
			exact("ComputeJobs", got.Jobs, want.Jobs)
			exact("Threads", got.Threads, want.Threads)
		})
	}
}
