package workloads

import (
	"context"
	"fmt"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
)

// The six SGEMM variants of Fig 15, following the myGEMM/CLBlast
// optimisation ladder the paper evaluates ([27], [28]): each variant is an
// optimisation developed for NVIDIA GPUs, applied unchanged to the mobile
// target. Dimensions must be multiples of 16.

// SgemmVariant is one rung of the optimisation ladder.
type SgemmVariant struct {
	// ID is 1..6, matching the paper's numbering.
	ID int
	// Name matches the Fig 15 legend.
	Name string
	// Kernel is the CLite source; entry point "sgemm".
	Kernel string
	// Global/Local compute the dispatch dimensions for (m, n).
	Global func(m, n int) [3]uint32
	Local  [3]uint32
	// TransposeB indicates the host must pass Bᵀ.
	TransposeB bool
	// Profile is the access-pattern annotation consumed by the desktop
	// cost model (coalescing and register blocking are not visible in
	// aggregate counters).
	Profile costmodel.KernelProfile
}

// SgemmVariants returns the ladder in paper order.
func SgemmVariants() []SgemmVariant {
	return []SgemmVariant{
		{
			ID: 1, Name: "Naive",
			Kernel: sgemm1Src,
			Global: func(m, n int) [3]uint32 { return [3]uint32{uint32(n), uint32(m), 1} },
			Local:  [3]uint32{16, 16, 1},
			// Per-thread strided walks through A defeat coalescing; no ILP.
			Profile: costmodel.KernelProfile{CoalescedFraction: 0.30, RegisterBlocking: 1, CacheHitFraction: 0.20},
		},
		{
			ID: 2, Name: "LocalMemTiling",
			Kernel: sgemm2Src,
			Global: func(m, n int) [3]uint32 { return [3]uint32{uint32(n), uint32(m), 1} },
			Local:  [3]uint32{16, 16, 1},
			// Cooperative tile loads are unit-stride.
			Profile: costmodel.KernelProfile{CoalescedFraction: 0.95, RegisterBlocking: 1, CacheHitFraction: 0.30},
		},
		{
			ID: 3, Name: "MoreWork/Thread",
			Kernel:  sgemm3Src,
			Global:  func(m, n int) [3]uint32 { return [3]uint32{uint32(n), uint32(m / 4), 1} },
			Local:   [3]uint32{16, 4, 1},
			Profile: costmodel.KernelProfile{CoalescedFraction: 0.95, RegisterBlocking: 2, CacheHitFraction: 0.30},
		},
		{
			ID: 4, Name: "WiderDataTypes",
			Kernel:  sgemm4Src,
			Global:  func(m, n int) [3]uint32 { return [3]uint32{uint32(n / 4), uint32(m), 1} },
			Local:   [3]uint32{4, 16, 1},
			Profile: costmodel.KernelProfile{CoalescedFraction: 0.97, RegisterBlocking: 2, CacheHitFraction: 0.30},
		},
		{
			ID: 5, Name: "TransInput",
			Kernel:     sgemm5Src,
			Global:     func(m, n int) [3]uint32 { return [3]uint32{uint32(n), uint32(m / 4), 1} },
			Local:      [3]uint32{16, 4, 1},
			TransposeB: true,
			Profile:    costmodel.KernelProfile{CoalescedFraction: 0.98, RegisterBlocking: 2, CacheHitFraction: 0.30},
		},
		{
			ID: 6, Name: "2DRegBlocking",
			Kernel: sgemm6Src,
			Global: func(m, n int) [3]uint32 { return [3]uint32{uint32(n / 4), uint32(m / 4), 1} },
			Local:  [3]uint32{8, 8, 1},
			// Big register tiles expose ILP; the row walks of A stay
			// reasonably coalesced through the L2 on desktop parts.
			Profile: costmodel.KernelProfile{CoalescedFraction: 0.85, RegisterBlocking: 4, CacheHitFraction: 0.85},
		},
	}
}

// RunSgemmVariant executes one variant on the given context and returns
// the C matrix.
func RunSgemmVariant(ctx context.Context, c *cl.Context, v SgemmVariant, a, b []float32, m, n, k int) ([]float32, error) {
	if m%16 != 0 || n%16 != 0 || k%16 != 0 {
		return nil, fmt.Errorf("workloads: sgemm dims must be multiples of 16 (got %dx%dx%d)", m, n, k)
	}
	bIn := b
	if v.TransposeB {
		bIn = make([]float32, len(b))
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bIn[j*k+i] = b[i*n+j]
			}
		}
	}
	ba, err := newBufF32(ctx, c, a)
	if err != nil {
		return nil, err
	}
	bb, err := newBufF32(ctx, c, bIn)
	if err != nil {
		return nil, err
	}
	bc, err := c.CreateBuffer(4 * m * n)
	if err != nil {
		return nil, err
	}
	kk, err := kernel1(ctx, c, v.Kernel, "sgemm", ba, bb, bc, m, n, k)
	if err != nil {
		return nil, err
	}
	if err := c.EnqueueKernel(ctx, kk, v.Global(m, n), v.Local); err != nil {
		return nil, err
	}
	return c.ReadF32(ctx, bc, m*n)
}

// SgemmNative is the float32 reference (also the verification oracle).
func SgemmNative(a, b []float32, m, n, k int) []float32 {
	out := make([]float32, m*n)
	for row := 0; row < m; row++ {
		for col := 0; col < n; col++ {
			var acc float32
			for i := 0; i < k; i++ {
				acc += a[row*k+i] * b[i*n+col]
			}
			out[row*n+col] = acc
		}
	}
	return out
}

// SgemmInputs generates deterministic inputs.
func SgemmInputs(m, n, k int) (a, b []float32) {
	r := rng(2020)
	return randF32s(r, m*k, -1, 1), randF32s(r, k*n, -1, 1)
}

const sgemm1Src = `
kernel void sgemm(global float* a, global float* b, global float* c, int m, int n, int k) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int i = 0; i < k; i++) {
        acc += a[row * k + i] * b[i * n + col];
    }
    c[row * n + col] = acc;
}
`

const sgemm2Src = `
kernel void sgemm(global float* a, global float* b, global float* c, int m, int n, int k) {
    local float As[256];
    local float Bs[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int row = get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < k; t += 16) {
        As[ly * 16 + lx] = a[row * k + t + lx];
        Bs[ly * 16 + lx] = b[(t + ly) * n + col];
        barrier();
        for (int i = 0; i < 16; i++) {
            acc += As[ly * 16 + i] * Bs[i * 16 + lx];
        }
        barrier();
    }
    c[row * n + col] = acc;
}
`

const sgemm3Src = `
kernel void sgemm(global float* a, global float* b, global float* c, int m, int n, int k) {
    local float As[256];
    local float Bs[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int grow = get_group_id(1) * 16;
    float acc0 = 0.0f;
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    float acc3 = 0.0f;
    for (int t = 0; t < k; t += 16) {
        for (int w = 0; w < 4; w++) {
            As[(ly + 4 * w) * 16 + lx] = a[(grow + ly + 4 * w) * k + t + lx];
            Bs[(ly + 4 * w) * 16 + lx] = b[(t + ly + 4 * w) * n + col];
        }
        barrier();
        for (int i = 0; i < 16; i++) {
            float bv = Bs[i * 16 + lx];
            acc0 += As[ly * 16 + i] * bv;
            acc1 += As[(ly + 4) * 16 + i] * bv;
            acc2 += As[(ly + 8) * 16 + i] * bv;
            acc3 += As[(ly + 12) * 16 + i] * bv;
        }
        barrier();
    }
    c[(grow + ly) * n + col] = acc0;
    c[(grow + ly + 4) * n + col] = acc1;
    c[(grow + ly + 8) * n + col] = acc2;
    c[(grow + ly + 12) * n + col] = acc3;
}
`

const sgemm4Src = `
kernel void sgemm(global float* a, global float* b, global float* c, int m, int n, int k) {
    local float As[256];
    local float Bs[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col0 = get_group_id(0) * 16 + 4 * lx;
    int row = get_global_id(1);
    float acc0 = 0.0f; float acc1 = 0.0f; float acc2 = 0.0f; float acc3 = 0.0f;
    for (int t = 0; t < k; t += 16) {
        int ai = row * k + t + 4 * lx;
        int li = ly * 16 + 4 * lx;
        As[li] = a[ai];
        As[li + 1] = a[ai + 1];
        As[li + 2] = a[ai + 2];
        As[li + 3] = a[ai + 3];
        int bi = (t + ly) * n + col0;
        Bs[li] = b[bi];
        Bs[li + 1] = b[bi + 1];
        Bs[li + 2] = b[bi + 2];
        Bs[li + 3] = b[bi + 3];
        barrier();
        for (int i = 0; i < 16; i++) {
            float av = As[ly * 16 + i];
            int bj = i * 16 + 4 * lx;
            acc0 += av * Bs[bj];
            acc1 += av * Bs[bj + 1];
            acc2 += av * Bs[bj + 2];
            acc3 += av * Bs[bj + 3];
        }
        barrier();
    }
    int ci = row * n + col0;
    c[ci] = acc0;
    c[ci + 1] = acc1;
    c[ci + 2] = acc2;
    c[ci + 3] = acc3;
}
`

// sgemm5: b is passed transposed (bt[col * k + i]).
const sgemm5Src = `
kernel void sgemm(global float* a, global float* bt, global float* c, int m, int n, int k) {
    local float As[256];
    local float Bs[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int col = get_global_id(0);
    int gcol = get_group_id(0) * 16;
    int grow = get_group_id(1) * 16;
    float acc0 = 0.0f;
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    float acc3 = 0.0f;
    for (int t = 0; t < k; t += 16) {
        for (int w = 0; w < 4; w++) {
            As[(ly + 4 * w) * 16 + lx] = a[(grow + ly + 4 * w) * k + t + lx];
            Bs[(ly + 4 * w) * 16 + lx] = bt[(gcol + ly + 4 * w) * k + t + lx];
        }
        barrier();
        for (int i = 0; i < 16; i++) {
            float bv = Bs[(col - gcol) * 16 + i];
            acc0 += As[ly * 16 + i] * bv;
            acc1 += As[(ly + 4) * 16 + i] * bv;
            acc2 += As[(ly + 8) * 16 + i] * bv;
            acc3 += As[(ly + 12) * 16 + i] * bv;
        }
        barrier();
    }
    c[(grow + ly) * n + col] = acc0;
    c[(grow + ly + 4) * n + col] = acc1;
    c[(grow + ly + 8) * n + col] = acc2;
    c[(grow + ly + 12) * n + col] = acc3;
}
`

const sgemm6Src = `
kernel void sgemm(global float* a, global float* b, global float* c, int m, int n, int k) {
    int col0 = get_global_id(0) * 4;
    int row0 = get_global_id(1) * 4;
    float acc00 = 0.0f; float acc01 = 0.0f; float acc02 = 0.0f; float acc03 = 0.0f;
    float acc10 = 0.0f; float acc11 = 0.0f; float acc12 = 0.0f; float acc13 = 0.0f;
    float acc20 = 0.0f; float acc21 = 0.0f; float acc22 = 0.0f; float acc23 = 0.0f;
    float acc30 = 0.0f; float acc31 = 0.0f; float acc32 = 0.0f; float acc33 = 0.0f;
    for (int i = 0; i < k; i++) {
        float a0 = a[row0 * k + i];
        float a1 = a[(row0 + 1) * k + i];
        float a2 = a[(row0 + 2) * k + i];
        float a3 = a[(row0 + 3) * k + i];
        int bi = i * n + col0;
        float b0 = b[bi];
        float b1 = b[bi + 1];
        float b2 = b[bi + 2];
        float b3 = b[bi + 3];
        acc00 += a0 * b0; acc01 += a0 * b1; acc02 += a0 * b2; acc03 += a0 * b3;
        acc10 += a1 * b0; acc11 += a1 * b1; acc12 += a1 * b2; acc13 += a1 * b3;
        acc20 += a2 * b0; acc21 += a2 * b1; acc22 += a2 * b2; acc23 += a2 * b3;
        acc30 += a3 * b0; acc31 += a3 * b1; acc32 += a3 * b2; acc33 += a3 * b3;
    }
    int ci = row0 * n + col0;
    c[ci] = acc00; c[ci + 1] = acc01; c[ci + 2] = acc02; c[ci + 3] = acc03;
    ci = (row0 + 1) * n + col0;
    c[ci] = acc10; c[ci + 1] = acc11; c[ci + 2] = acc12; c[ci + 3] = acc13;
    ci = (row0 + 2) * n + col0;
    c[ci] = acc20; c[ci + 1] = acc21; c[ci + 2] = acc22; c[ci + 3] = acc23;
    ci = (row0 + 3) * n + col0;
    c[ci] = acc30; c[ci + 1] = acc31; c[ci + 2] = acc32; c[ci + 3] = acc33;
}
`
