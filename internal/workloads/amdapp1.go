package workloads

import (
	"context"
	"sort"

	"mobilesim/internal/cl"
)

// --- BinarySearch (AMD APP 2.5) ---------------------------------------------
//
// The AMD formulation: the sorted array is cut into segments, one work-item
// per segment checks whether the key falls inside its segment, and the host
// narrows the range and relaunches — an iterative workload with tiny
// kernels and heavy CPU interaction, which is why it neither benefits from
// host-thread scaling (Fig 10) nor flatters full-system simulation (Fig 8).

const binarySearchSrc = `
kernel void bsearch_step(global int* arr, global int* res, int key, int lo, int seg, int n) {
    int i = get_global_id(0);
    int first = lo + i * seg;
    int last = first + seg - 1;
    if (last > n - 1) { last = n - 1; }
    if (first <= last) {
        int a = arr[first];
        int b = arr[last];
        if (a <= key && key <= b) {
            res[0] = first;
            res[1] = last;
        }
    }
}
`

func init() {
	register(&Spec{
		Name:       "BinarySearch",
		Suite:      "AMD APP 2.5",
		PaperInput: "16777216 elements",
		SmallScale: 1 << 12, DefaultScale: 1 << 16, PaperScale: 1 << 24,
		Make: makeBinarySearch,
	})
}

func makeBinarySearch(n int) *Instance {
	const segments = 256
	const numKeys = 8
	r := rng(101)
	arr := make([]int32, n)
	v := int32(0)
	for i := range arr {
		v += r.Int31n(3)
		arr[i] = v
	}
	keys := make([]int32, numKeys)
	for i := range keys {
		keys[i] = arr[r.Intn(n)]
	}

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			bArr, err := newBufI32(ctx, c, arr)
			if err != nil {
				return nil, err
			}
			bRes, err := c.CreateBuffer(8)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, binarySearchSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("bsearch_step")
			if err != nil {
				return nil, err
			}
			out := make([]int32, numKeys)
			for ki, key := range keys {
				lo, size := 0, n
				for size > 1 {
					seg := (size + segments - 1) / segments
					if err := c.WriteI32(ctx, bRes, []int32{int32(lo), int32(lo + size - 1)}); err != nil {
						return nil, err
					}
					if err := bindArgs(k, bArr, bRes, key, lo, seg, n); err != nil {
						return nil, err
					}
					if err := c.EnqueueKernel(ctx, k, cl.G1(segments), cl.G1(64)); err != nil {
						return nil, err
					}
					res, err := c.ReadI32(ctx, bRes, 2)
					if err != nil {
						return nil, err
					}
					lo = int(res[0])
					size = int(res[1]-res[0]) + 1
				}
				out[ki] = arr[lo]
			}
			return out, nil
		},
		Native: func() any {
			out := make([]int32, numKeys)
			for ki, key := range keys {
				i := sort.Search(n, func(i int) bool { return arr[i] >= key })
				out[ki] = arr[i]
			}
			return out
		},
	}
}

// --- BitonicSort (AMD APP 2.5) ------------------------------------------------
//
// log²(n) kernel launches of the classic compare-exchange network.

const bitonicSrc = `
kernel void bitonic(global int* a, int stage, int dist) {
    int t = get_global_id(0);
    int lo = (t % dist) + (t / dist) * 2 * dist;
    int hi = lo + dist;
    int l = a[lo];
    int r = a[hi];
    int up = ((t >> stage) & 1) == 0;
    int less = min(l, r);
    int more = max(l, r);
    if (up) {
        a[lo] = less;
        a[hi] = more;
    } else {
        a[lo] = more;
        a[hi] = less;
    }
}
`

func init() {
	register(&Spec{
		Name:       "BitonicSort",
		Suite:      "AMD APP 2.5",
		PaperInput: "2048 elements",
		SmallScale: 256, DefaultScale: 2048, PaperScale: 2048,
		Make: makeBitonicSort,
	})
}

func makeBitonicSort(n int) *Instance {
	n = nextPow2(n)
	r := rng(202)
	data := randI32s(r, n, 1<<30)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			buf, err := newBufI32(ctx, c, data)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, bitonicSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("bitonic")
			if err != nil {
				return nil, err
			}
			half := n / 2
			wg := 64
			if half < wg {
				wg = half
			}
			for stage := 0; 1<<(stage+1) <= n; stage++ {
				for dist := 1 << stage; dist > 0; dist >>= 1 {
					if err := bindArgs(k, buf, stage, dist); err != nil {
						return nil, err
					}
					if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(half)), cl.G1(uint32(wg))); err != nil {
						return nil, err
					}
				}
			}
			return c.ReadI32(ctx, buf, n)
		},
		Native: func() any {
			out := append([]int32(nil), data...)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		},
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// --- MatrixTranspose (AMD APP 2.5) ---------------------------------------------
//
// Tiled transpose staging 16x16 tiles through local memory.

const transposeSrc = `
kernel void mtranspose(global float* in, global float* out, int w, int h) {
    local float tile[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int x = get_global_id(0);
    int y = get_global_id(1);
    tile[ly * 16 + lx] = in[y * w + x];
    barrier();
    int ox = get_group_id(1) * 16 + lx;
    int oy = get_group_id(0) * 16 + ly;
    out[oy * h + ox] = tile[lx * 16 + ly];
}
`

func init() {
	register(&Spec{
		Name:       "MatrixTranspose",
		Suite:      "AMD APP 2.5",
		PaperInput: "3008x3008 matrix",
		SmallScale: 64, DefaultScale: 256, PaperScale: 3008,
		Make: makeTranspose,
	})
}

func makeTranspose(dim int) *Instance {
	w := roundUp(dim, 16)
	h := w
	r := rng(303)
	data := randF32s(r, w*h, -10, 10)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufF32(ctx, c, data)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(4 * w * h)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, transposeSrc, "mtranspose", in, out, w, h)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G2(uint32(w), uint32(h)), cl.G2(16, 16)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, out, w*h)
		},
		Native: func() any {
			out := make([]float32, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					out[x*h+y] = data[y*w+x]
				}
			}
			return out
		},
	}
}

// --- FloydWarshall (AMD APP 2.5) -----------------------------------------------
//
// n kernel launches, one per pivot vertex.

const floydSrc = `
kernel void floyd(global int* d, int n, int k) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < n && y < n) {
        int direct = d[y * n + x];
        int through = d[y * n + k] + d[k * n + x];
        d[y * n + x] = min(direct, through);
    }
}
`

func init() {
	register(&Spec{
		Name:       "FloydWarshall",
		Suite:      "AMD APP 2.5",
		PaperInput: "256 nodes",
		SmallScale: 32, DefaultScale: 128, PaperScale: 256,
		Make: makeFloyd,
	})
}

func makeFloyd(n int) *Instance {
	n = roundUp(n, 16)
	r := rng(404)
	const inf = 1 << 20
	d0 := make([]int32, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			switch {
			case x == y:
				d0[y*n+x] = 0
			case r.Intn(100) < 20:
				d0[y*n+x] = 1 + r.Int31n(100)
			default:
				d0[y*n+x] = inf
			}
		}
	}

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			buf, err := newBufI32(ctx, c, d0)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, floydSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("floyd")
			if err != nil {
				return nil, err
			}
			for piv := 0; piv < n; piv++ {
				if err := bindArgs(k, buf, n, piv); err != nil {
					return nil, err
				}
				if err := c.EnqueueKernel(ctx, k, cl.G2(uint32(n), uint32(n)), cl.G2(16, 16)); err != nil {
					return nil, err
				}
			}
			return c.ReadI32(ctx, buf, n*n)
		},
		Native: func() any {
			d := append([]int32(nil), d0...)
			for k := 0; k < n; k++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						if t := d[y*n+k] + d[k*n+x]; t < d[y*n+x] {
							d[y*n+x] = t
						}
					}
				}
			}
			return d
		},
	}
}
