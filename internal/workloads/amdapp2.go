package workloads

import (
	"context"
	"math"

	"mobilesim/internal/cl"
)

// --- DCT (AMD APP 2.5) ---------------------------------------------------------
//
// 8x8 block discrete cosine transform: out = C · block · Cᵀ, one thread
// per output element.

const dctSrc = `
kernel void dct8(global float* in, global float* out, global float* c, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        int bx = (x / 8) * 8;
        int by = (y / 8) * 8;
        int u = x % 8;
        int v = y % 8;
        float acc = 0.0f;
        for (int i = 0; i < 8; i++) {
            float row = 0.0f;
            for (int j = 0; j < 8; j++) {
                row += in[(by + i) * w + bx + j] * c[u * 8 + j];
            }
            acc += c[v * 8 + i] * row;
        }
        out[y * w + x] = acc;
    }
}
`

func init() {
	register(&Spec{
		Name:       "DCT",
		Suite:      "AMD APP 2.5",
		PaperInput: "10000x1000 matrix",
		SmallScale: 32, DefaultScale: 128, PaperScale: 3168, // ~10M elements
		Make: makeDCT,
	})
}

func dctCoeffs() []float32 {
	c := make([]float32, 64)
	for u := 0; u < 8; u++ {
		for j := 0; j < 8; j++ {
			a := float32(math.Sqrt(2.0 / 8.0))
			if u == 0 {
				a = float32(math.Sqrt(1.0 / 8.0))
			}
			c[u*8+j] = a * float32(math.Cos(float64(2*j+1)*float64(u)*math.Pi/16))
		}
	}
	return c
}

func makeDCT(dim int) *Instance {
	w := roundUp(dim, 8)
	h := w
	r := rng(505)
	data := randF32s(r, w*h, -128, 128)
	coef := dctCoeffs()

	return &Instance{
		Tol: 2e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufF32(ctx, c, data)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(4 * w * h)
			if err != nil {
				return nil, err
			}
			cb, err := newBufF32(ctx, c, coef)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, dctSrc, "dct8", in, out, cb, w, h)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G2(uint32(w), uint32(h)), cl.G2(8, 8)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, out, w*h)
		},
		Native: func() any {
			out := make([]float32, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					bx, by := x/8*8, y/8*8
					u, v := x%8, y%8
					var acc float32
					for i := 0; i < 8; i++ {
						var row float32
						for j := 0; j < 8; j++ {
							row += data[(by+i)*w+bx+j] * coef[u*8+j]
						}
						acc += coef[v*8+i] * row
					}
					out[y*w+x] = acc
				}
			}
			return out
		},
	}
}

// --- DwtHaar1D (AMD APP 2.5) -----------------------------------------------------
//
// Hierarchical 1-D Haar wavelet: log2(n) kernel launches, each halving the
// approximation region while passing prior detail coefficients through.

const haarSrc = `
kernel void haar(global float* in, global float* out, int halfn, int total) {
    int i = get_global_id(0);
    if (i < halfn) {
        float s = 0.70710678f;
        float a = in[2 * i];
        float b = in[2 * i + 1];
        out[i] = (a + b) * s;
        out[halfn + i] = (a - b) * s;
    } else if (i >= 2 * halfn && i < total) {
        out[i] = in[i];
    }
}
`

func init() {
	register(&Spec{
		Name:       "DwtHaar1D",
		Suite:      "AMD APP 2.5",
		PaperInput: "8388608-sample signal",
		SmallScale: 1 << 10, DefaultScale: 1 << 14, PaperScale: 1 << 23,
		Make: makeHaar,
	})
}

func makeHaar(n int) *Instance {
	n = nextPow2(n)
	r := rng(606)
	signal := randF32s(r, n, -1, 1)

	return &Instance{
		Tol: 1e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			a, err := newBufF32(ctx, c, signal)
			if err != nil {
				return nil, err
			}
			b, err := c.CreateBuffer(4 * n)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, haarSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("haar")
			if err != nil {
				return nil, err
			}
			src, dst := a, b
			for half := n / 2; half >= 1; half /= 2 {
				if err := bindArgs(k, src, dst, half, n); err != nil {
					return nil, err
				}
				wg := uint32(64)
				g := uint32(roundUp(n, 64))
				if err := c.EnqueueKernel(ctx, k, cl.G1(g), cl.G1(wg)); err != nil {
					return nil, err
				}
				src, dst = dst, src
			}
			return c.ReadF32(ctx, src, n)
		},
		Native: func() any {
			cur := append([]float32(nil), signal...)
			next := make([]float32, n)
			const s = float32(0.70710678)
			for half := n / 2; half >= 1; half /= 2 {
				copy(next, cur)
				for i := 0; i < half; i++ {
					a, b := cur[2*i], cur[2*i+1]
					next[i] = (a + b) * s
					next[half+i] = (a - b) * s
				}
				cur, next = next, cur
			}
			return cur
		},
	}
}

// --- Reduction (AMD APP 2.5) -------------------------------------------------------
//
// Tree reduction through local memory, relaunched until one value remains.
// Its many tiny barrier-separated clauses make it one of the empty-slot-
// heavy kernels in Fig 11.

const reductionSrc = `
kernel void reduce(global int* in, global int* out, int n) {
    local int scratch[256];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int v = 0;
    if (g < n) { v = in[g]; }
    scratch[l] = v;
    barrier();
    for (int s = 128; s > 0; s = s >> 1) {
        if (l < s) { scratch[l] = scratch[l] + scratch[l + s]; }
        barrier();
    }
    if (l == 0) { out[get_group_id(0)] = scratch[0]; }
}
`

func init() {
	register(&Spec{
		Name:       "Reduction",
		Suite:      "AMD APP 2.5",
		PaperInput: "9999360 elements",
		SmallScale: 1 << 12, DefaultScale: 1 << 16, PaperScale: 9999360,
		Make: makeReduction,
	})
}

func makeReduction(n int) *Instance {
	r := rng(707)
	data := randI32s(r, n, 1000)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufI32(ctx, c, data)
			if err != nil {
				return nil, err
			}
			groups := (n + 255) / 256
			out, err := c.CreateBuffer(4 * groups)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, reductionSrc)
			if err != nil {
				return nil, err
			}
			k, err := prog.CreateKernel("reduce")
			if err != nil {
				return nil, err
			}
			cur, curN := in, n
			dst := out
			for curN > 1 {
				g := (curN + 255) / 256
				if err := bindArgs(k, cur, dst, curN); err != nil {
					return nil, err
				}
				if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(g*256)), cl.G1(256)); err != nil {
					return nil, err
				}
				cur, dst = dst, cur
				curN = g
			}
			return c.ReadI32(ctx, cur, 1)
		},
		Native: func() any {
			var sum int32
			for _, v := range data {
				sum += v
			}
			return []int32{sum}
		},
	}
}

// --- ScanLargeArrays (AMD APP 2.5) ----------------------------------------------------
//
// Hillis-Steele inclusive scan per workgroup, recursive scan of the group
// sums, then a uniform add — three kernels, multiple passes.

const scanSrc = `
kernel void group_scan(global int* in, global int* out, global int* sums, int n) {
    local int a[256];
    local int b[256];
    int l = get_local_id(0);
    int g = get_global_id(0);
    int v = 0;
    if (g < n) { v = in[g]; }
    a[l] = v;
    barrier();
    int src = 0;
    for (int off = 1; off < 256; off = off << 1) {
        if (src == 0) {
            if (l >= off) { b[l] = a[l] + a[l - off]; } else { b[l] = a[l]; }
        } else {
            if (l >= off) { a[l] = b[l] + b[l - off]; } else { a[l] = b[l]; }
        }
        src = 1 - src;
        barrier();
    }
    int r = a[l];
    if (g < n) { out[g] = r; }
    if (l == 255) { sums[get_group_id(0)] = r; }
}

kernel void add_sums(global int* out, global int* sums, int n) {
    int g = get_global_id(0);
    int grp = get_group_id(0);
    if (grp > 0 && g < n) {
        out[g] = out[g] + sums[grp - 1];
    }
}
`

func init() {
	register(&Spec{
		Name:       "ScanLargeArrays",
		Suite:      "AMD APP 2.5",
		PaperInput: "1048576 elements",
		SmallScale: 1 << 11, DefaultScale: 1 << 15, PaperScale: 1 << 20,
		Make: makeScan,
	})
}

func makeScan(n int) *Instance {
	r := rng(808)
	data := randI32s(r, n, 100)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			prog, err := c.BuildProgram(ctx, scanSrc)
			if err != nil {
				return nil, err
			}
			kScan, err := prog.CreateKernel("group_scan")
			if err != nil {
				return nil, err
			}
			kAdd, err := prog.CreateKernel("add_sums")
			if err != nil {
				return nil, err
			}
			in, err := newBufI32(ctx, c, data)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(4 * roundUp(n, 256))
			if err != nil {
				return nil, err
			}

			// Recursive scan.
			var scan func(in, out *cl.Buffer, n int) error
			scan = func(in, out *cl.Buffer, n int) error {
				groups := (n + 255) / 256
				sums, err := c.CreateBuffer(4 * roundUp(groups, 256))
				if err != nil {
					return err
				}
				if err := bindArgs(kScan, in, out, sums, n); err != nil {
					return err
				}
				if err := c.EnqueueKernel(ctx, kScan, cl.G1(uint32(groups*256)), cl.G1(256)); err != nil {
					return err
				}
				if groups > 1 {
					sumsScanned, err := c.CreateBuffer(4 * roundUp(groups, 256))
					if err != nil {
						return err
					}
					if err := scan(sums, sumsScanned, groups); err != nil {
						return err
					}
					if err := bindArgs(kAdd, out, sumsScanned, n); err != nil {
						return err
					}
					if err := c.EnqueueKernel(ctx, kAdd, cl.G1(uint32(groups*256)), cl.G1(256)); err != nil {
						return err
					}
				}
				return nil
			}
			if err := scan(in, out, n); err != nil {
				return nil, err
			}
			return c.ReadI32(ctx, out, n)
		},
		Native: func() any {
			out := make([]int32, n)
			var acc int32
			for i, v := range data {
				acc += v
				out[i] = acc
			}
			return out
		},
	}
}
