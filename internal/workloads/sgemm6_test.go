package workloads

import (
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
	"mobilesim/internal/platform"
	"mobilesim/internal/stats"
)

func TestSgemmVariantsAllCorrect(t *testing.T) {
	const m, n, k = 32, 32, 32
	a, b := SgemmInputs(m, n, k)
	want := SgemmNative(a, b, m, n, k)

	for _, v := range SgemmVariants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			p, err := platform.New(platform.Config{RAMSize: 128 << 20})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			c, err := cl.NewContext(p, "")
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSgemmVariant(bg, c, v, a, b, m, n, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !closeF32(got[i], want[i], 1e-3) {
					t.Fatalf("c[%d] = %g, want %g", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSgemmVariantShapes checks the Fig 15 shape claims: variant 4 nearly
// eliminates global traffic by shifting to local memory; variant 6 is the
// most global-memory-hungry; variant 1 uses no local memory at all.
func TestSgemmVariantShapes(t *testing.T) {
	const m, n, k = 32, 32, 32
	a, b := SgemmInputs(m, n, k)

	type shot struct {
		gs stats.GPUStats
	}
	shots := map[int]shot{}
	for _, v := range SgemmVariants() {
		p, err := platform.New(platform.Config{RAMSize: 128 << 20})
		if err != nil {
			t.Fatal(err)
		}
		c, err := cl.NewContext(p, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunSgemmVariant(bg, c, v, a, b, m, n, k); err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		gs, _ := p.GPU.Stats()
		shots[v.ID] = shot{gs: gs}
		p.Close()
	}

	if shots[1].gs.LocalLS != 0 {
		t.Errorf("naive variant should not touch local memory (got %d)", shots[1].gs.LocalLS)
	}
	if shots[2].gs.LocalLS == 0 || shots[4].gs.LocalLS == 0 {
		t.Error("tiled variants must use local memory")
	}
	// Tiling slashes global traffic vs naive.
	if shots[2].gs.GlobalLS*4 > shots[1].gs.GlobalLS {
		t.Errorf("tiling should cut global traffic by >4x: naive=%d tiled=%d",
			shots[1].gs.GlobalLS, shots[2].gs.GlobalLS)
	}
	// Variant 6 carries the most global traffic of the tiled/blocked group
	// (paper: (6) greatly increases global accesses relative to (5)).
	if shots[6].gs.GlobalLS <= shots[5].gs.GlobalLS {
		t.Errorf("2D reg blocking should increase global traffic vs transposed tiling: %d vs %d",
			shots[6].gs.GlobalLS, shots[5].gs.GlobalLS)
	}
	// Variant 6 has the largest register footprint.
	for id := 1; id <= 5; id++ {
		if shots[6].gs.RegistersUsed < shots[id].gs.RegistersUsed {
			t.Errorf("variant 6 should have max registers (v6=%d, v%d=%d)",
				shots[6].gs.RegistersUsed, id, shots[id].gs.RegistersUsed)
		}
	}

	// Cost-model rankings (the Fig 15 headline): on Mali the local-heavy,
	// global-light variant 4 wins and variant 6 loses; on the desktop
	// model variant 1 is the clear loser and variant 6 competitive.
	mali := costmodel.MaliG71()
	desk := costmodel.K20m()
	variants := SgemmVariants()
	maliT := map[int]float64{}
	deskT := map[int]float64{}
	for _, v := range variants {
		gs := shots[v.ID].gs
		maliT[v.ID] = mali.Estimate(&gs)
		deskT[v.ID] = desk.Estimate(&gs, v.Profile, 1)
	}
	for id := 1; id <= 6; id++ {
		if id != 4 && maliT[4] >= maliT[id] {
			t.Errorf("Mali model: variant 4 should be fastest (v4=%.0f v%d=%.0f)", maliT[4], id, maliT[id])
		}
		// The most desktop-optimised variant (6) must trigger the mobile
		// bottleneck: slower than every other *optimised* variant.
		if id >= 2 && id <= 5 && maliT[6] <= maliT[id] {
			t.Errorf("Mali model: variant 6 should lose to variant %d (v6=%.0f v%d=%.0f)", id, maliT[6], id, maliT[id])
		}
		if id != 1 && deskT[1] <= deskT[id] {
			t.Errorf("desktop model: variant 1 should be slowest (v1=%.0f v%d=%.0f)", deskT[1], id, deskT[id])
		}
		if id != 6 && deskT[6] >= deskT[id] {
			t.Errorf("desktop model: variant 6 should be fastest (v6=%.0f v%d=%.0f)", deskT[6], id, deskT[id])
		}
	}
	// No correlation between platforms: the winners differ.
	bestDesk, bestMali := 1, 1
	for id := 2; id <= 6; id++ {
		if deskT[id] < deskT[bestDesk] {
			bestDesk = id
		}
		if maliT[id] < maliT[bestMali] {
			bestMali = id
		}
	}
	if bestDesk == bestMali {
		t.Errorf("winner coincides across platforms (v%d); expected divergent rankings", bestDesk)
	}
}
