package workloads

import (
	"context"
	"math"

	"mobilesim/internal/cl"
)

// --- SobelFilter (AMD APP 2.5) ----------------------------------------------------
//
// 3x3 Sobel edge detection over an 8-bit image: the compute-dense,
// straight-line kernel of Fig 11 and the scaling star of Figs 9/10.

const sobelSrc = `
kernel void sobel(global uchar* in, global uchar* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        int i00 = in[(y - 1) * w + x - 1];
        int i10 = in[(y - 1) * w + x];
        int i20 = in[(y - 1) * w + x + 1];
        int i01 = in[y * w + x - 1];
        int i21 = in[y * w + x + 1];
        int i02 = in[(y + 1) * w + x - 1];
        int i12 = in[(y + 1) * w + x];
        int i22 = in[(y + 1) * w + x + 1];
        int gx = i00 + 2 * i01 + i02 - i20 - 2 * i21 - i22;
        int gy = i00 + 2 * i10 + i20 - i02 - 2 * i12 - i22;
        float m = sqrt((float)(gx * gx + gy * gy)) / 2.0f;
        out[y * w + x] = min((int)m, 255);
    } else if (x < w && y < h) {
        out[y * w + x] = 0;
    }
}
`

func init() {
	register(&Spec{
		Name:       "SobelFilter",
		Suite:      "AMD APP 2.5",
		PaperInput: "1536x1536 image",
		SmallScale: 64, DefaultScale: 256, PaperScale: 1536,
		Make: makeSobel,
	})
}

// MakeSobelInstance exposes SobelFilter at an explicit width for the input
// sweep of Fig 9.
func MakeSobelInstance(dim int) *Instance { return makeSobel(dim) }

func makeSobel(dim int) *Instance {
	w := roundUp(dim, 16)
	h := w
	r := rng(909)
	img := randBytes(r, w*h)

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufU8(ctx, c, img)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(w * h)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, sobelSrc, "sobel", in, out, w, h)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G2(uint32(w), uint32(h)), cl.G2(16, 16)); err != nil {
				return nil, err
			}
			return c.ReadBuffer(ctx, out, w*h)
		},
		Native: func() any {
			out := make([]byte, w*h)
			for y := 1; y < h-1; y++ {
				for x := 1; x < w-1; x++ {
					i00 := int(img[(y-1)*w+x-1])
					i10 := int(img[(y-1)*w+x])
					i20 := int(img[(y-1)*w+x+1])
					i01 := int(img[y*w+x-1])
					i21 := int(img[y*w+x+1])
					i02 := int(img[(y+1)*w+x-1])
					i12 := int(img[(y+1)*w+x])
					i22 := int(img[(y+1)*w+x+1])
					gx := i00 + 2*i01 + i02 - i20 - 2*i21 - i22
					gy := i00 + 2*i10 + i20 - i02 - 2*i12 - i22
					m := float32(math.Sqrt(float64(float32(gx*gx+gy*gy)))) / 2
					v := int(m)
					if v > 255 {
						v = 255
					}
					out[y*w+x] = byte(v)
				}
			}
			return out
		},
	}
}

// --- URNG (AMD APP 2.5) --------------------------------------------------------------
//
// Uniform random noise generator: per-pixel LCG noise injection.

const urngSrc = `
kernel void urng(global uchar* in, global uchar* out, int factor, int n) {
    int i = get_global_id(0);
    if (i < n) {
        int seed = i * 214013 + 2531011;
        seed = seed * 214013 + 2531011;
        int r = (seed >> 16) & 255;
        int noise = (r % (2 * factor + 1)) - factor;
        int v = in[i] + noise;
        out[i] = min(max(v, 0), 255);
    }
}
`

func init() {
	register(&Spec{
		Name:       "URNG",
		Suite:      "AMD APP 2.5",
		PaperInput: "1536x1536 image",
		SmallScale: 64, DefaultScale: 256, PaperScale: 1536,
		Make: makeURNG,
	})
}

func makeURNG(dim int) *Instance {
	n := dim * dim
	r := rng(1010)
	img := randBytes(r, n)
	const factor = 15

	return &Instance{
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufU8(ctx, c, img)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(n)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, urngSrc, "urng", in, out, factor, n)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(roundUp(n, 64))), cl.G1(64)); err != nil {
				return nil, err
			}
			return c.ReadBuffer(ctx, out, n)
		},
		Native: func() any {
			out := make([]byte, n)
			for i := range out {
				seed := int32(i)*214013 + 2531011
				seed = seed*214013 + 2531011
				r := (seed >> 16) & 255
				noise := int(r%(2*factor+1)) - factor
				v := int(img[i]) + noise
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				out[i] = byte(v)
			}
			return out
		},
	}
}

// --- RecursiveGaussian (AMD APP 2.5) ----------------------------------------------------
//
// Recursive (IIR) Gaussian approximation: forward+backward passes along
// rows, then along columns. One thread per row/column — long sequential
// inner loops, the bimodal clause-size benchmark of Fig 13.

const rgaussSrc = `
kernel void rgauss_rows(global float* in, global float* out, int w, int h, float a) {
    int y = get_global_id(0);
    if (y < h) {
        float yp = in[y * w];
        out[y * w] = yp;
        for (int x = 1; x < w; x++) {
            float xc = in[y * w + x];
            float yc = xc + (yp - xc) * a;
            out[y * w + x] = yc;
            yp = yc;
        }
        yp = out[y * w + w - 1];
        for (int x = w - 2; x >= 0; x--) {
            float xc = out[y * w + x];
            float yc = xc + (yp - xc) * a;
            out[y * w + x] = yc;
            yp = yc;
        }
    }
}

kernel void rgauss_cols(global float* in, global float* out, int w, int h, float a) {
    int x = get_global_id(0);
    if (x < w) {
        float yp = in[x];
        out[x] = yp;
        for (int y = 1; y < h; y++) {
            float xc = in[y * w + x];
            float yc = xc + (yp - xc) * a;
            out[y * w + x] = yc;
            yp = yc;
        }
        yp = out[(h - 1) * w + x];
        for (int y = h - 2; y >= 0; y--) {
            float xc = out[y * w + x];
            float yc = xc + (yp - xc) * a;
            out[y * w + x] = yc;
            yp = yc;
        }
    }
}
`

func init() {
	register(&Spec{
		Name:       "RecursiveGaussian",
		Suite:      "AMD APP 2.5",
		PaperInput: "1536x1536 image",
		SmallScale: 32, DefaultScale: 128, PaperScale: 1536,
		Make: makeRGauss,
	})
}

func makeRGauss(dim int) *Instance {
	w, h := dim, dim
	r := rng(1111)
	img := randF32s(r, w*h, 0, 255)
	const alpha = float32(0.6)

	rowPass := func(src, dst []float32) {
		for y := 0; y < h; y++ {
			yp := src[y*w]
			dst[y*w] = yp
			for x := 1; x < w; x++ {
				xc := src[y*w+x]
				yc := xc + (yp-xc)*alpha
				dst[y*w+x] = yc
				yp = yc
			}
			yp = dst[y*w+w-1]
			for x := w - 2; x >= 0; x-- {
				xc := dst[y*w+x]
				yc := xc + (yp-xc)*alpha
				dst[y*w+x] = yc
				yp = yc
			}
		}
	}
	colPass := func(src, dst []float32) {
		for x := 0; x < w; x++ {
			yp := src[x]
			dst[x] = yp
			for y := 1; y < h; y++ {
				xc := src[y*w+x]
				yc := xc + (yp-xc)*alpha
				dst[y*w+x] = yc
				yp = yc
			}
			yp = dst[(h-1)*w+x]
			for y := h - 2; y >= 0; y-- {
				xc := dst[y*w+x]
				yc := xc + (yp-xc)*alpha
				dst[y*w+x] = yc
				yp = yc
			}
		}
	}

	return &Instance{
		Tol: 1e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufF32(ctx, c, img)
			if err != nil {
				return nil, err
			}
			tmp, err := c.CreateBuffer(4 * w * h)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(4 * w * h)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, rgaussSrc)
			if err != nil {
				return nil, err
			}
			kr, err := prog.CreateKernel("rgauss_rows")
			if err != nil {
				return nil, err
			}
			kc, err := prog.CreateKernel("rgauss_cols")
			if err != nil {
				return nil, err
			}
			if err := bindArgs(kr, in, tmp, w, h, alpha); err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, kr, cl.G1(uint32(roundUp(h, 32))), cl.G1(32)); err != nil {
				return nil, err
			}
			if err := bindArgs(kc, tmp, out, w, h, alpha); err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, kc, cl.G1(uint32(roundUp(w, 32))), cl.G1(32)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, out, w*h)
		},
		Native: func() any {
			tmp := make([]float32, w*h)
			out := make([]float32, w*h)
			rowPass(img, tmp)
			colPass(tmp, out)
			return out
		},
	}
}

// --- BinomialOption (AMD APP 2.5) ----------------------------------------------------
//
// Binomial option pricing: one workgroup per option, the lattice walked
// backward through local memory with a barrier per step.

const binomialSrc = `
kernel void binomial(global float* randArr, global float* output, int steps) {
    local float callA[256];
    local float callB[256];
    int tid = get_local_id(0);
    int bid = get_group_id(0);
    float inRand = randArr[bid];
    float sPrice = (1.0f - inRand) * 5.0f + inRand * 30.0f;
    float strike = (1.0f - inRand) * 1.0f + inRand * 100.0f;
    float years = (1.0f - inRand) * 0.25f + inRand * 10.0f;
    float dt = years / (float)steps;
    float vsdt = 0.3f * sqrt(dt);
    float rdt = 0.02f * dt;
    float rr = exp(rdt);
    float rInv = 1.0f / rr;
    float u = exp(vsdt);
    float d = 1.0f / u;
    float pu = (rr - d) / (u - d);
    float pd = 1.0f - pu;
    float puByr = pu * rInv;
    float pdByr = pd * rInv;
    float price = sPrice * exp(vsdt * (2.0f * (float)tid - (float)steps));
    callA[tid] = fmax(price - strike, 0.0f);
    barrier();
    for (int j = steps; j > 0; j--) {
        if (tid < j) {
            callB[tid] = puByr * callA[tid + 1] + pdByr * callA[tid];
        }
        barrier();
        if (tid < j) {
            callA[tid] = callB[tid];
        }
        barrier();
    }
    if (tid == 0) { output[bid] = callA[0]; }
}
`

func init() {
	register(&Spec{
		Name:       "BinomialOption",
		Suite:      "AMD APP 2.5",
		PaperInput: "512 samples",
		SmallScale: 4, DefaultScale: 64, PaperScale: 512,
		Make: makeBinomial,
	})
}

func makeBinomial(numOptions int) *Instance {
	const steps = 63 // lattice steps; workgroup = steps+1 threads
	r := rng(1212)
	rands := randF32s(r, numOptions, 0.05, 0.95)

	native := func() []float32 {
		out := make([]float32, numOptions)
		callA := make([]float32, steps+2)
		callB := make([]float32, steps+2)
		for b := 0; b < numOptions; b++ {
			inRand := rands[b]
			sPrice := (1-inRand)*5 + inRand*30
			strike := (1-inRand)*1 + inRand*100
			years := (1-inRand)*0.25 + inRand*10
			dt := years / steps
			vsdt := 0.3 * float32(math.Sqrt(float64(dt)))
			rdt := 0.02 * dt
			rr := float32(math.Exp(float64(rdt)))
			rInv := 1 / rr
			u := float32(math.Exp(float64(vsdt)))
			d := 1 / u
			pu := (rr - d) / (u - d)
			pd := 1 - pu
			puByr := pu * rInv
			pdByr := pd * rInv
			for t := 0; t <= steps; t++ {
				price := sPrice * float32(math.Exp(float64(vsdt*(2*float32(t)-steps))))
				v := price - strike
				if v < 0 {
					v = 0
				}
				callA[t] = v
			}
			for j := steps; j > 0; j-- {
				for t := 0; t < j; t++ {
					callB[t] = puByr*callA[t+1] + pdByr*callA[t]
				}
				copy(callA[:j], callB[:j])
			}
			out[b] = callA[0]
		}
		return out
	}

	return &Instance{
		Tol: 5e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			in, err := newBufF32(ctx, c, rands)
			if err != nil {
				return nil, err
			}
			out, err := c.CreateBuffer(4 * numOptions)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, binomialSrc, "binomial", in, out, steps)
			if err != nil {
				return nil, err
			}
			wg := uint32(steps + 1)
			if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(numOptions)*wg), cl.G1(wg)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, out, numOptions)
		},
		Native: func() any { return native() },
	}
}
