package workloads

import (
	"context"
	"math"

	"mobilesim/internal/cl"
)

// --- Back Propagation (Rodinia 3.1) ---------------------------------------------
//
// One forward pass of a two-layer perceptron (input -> 16 hidden units)
// plus the weight-adjust kernel. The layerforward kernel stages input
// slices and the weight tile through local memory, then tree-reduces; the
// adjust kernel is the global-traffic-heavy part that dominates backprop's
// data-access profile in Fig 12.

const backpropSrc = `
kernel void layerforward(global float* input, global float* weights, global float* partial,
                         int hid) {
    local float inputNode[16];
    local float weightMatrix[256];
    int by = get_group_id(1);
    int tx = get_local_id(0);
    int ty = get_local_id(1);
    int inputIndex = 16 * by + ty + 1;
    if (tx == 0) {
        inputNode[ty] = input[inputIndex];
    }
    barrier();
    int widx = inputIndex * (hid + 1) + tx + 1;
    weightMatrix[ty * 16 + tx] = weights[widx];
    barrier();
    weightMatrix[ty * 16 + tx] = weightMatrix[ty * 16 + tx] * inputNode[ty];
    barrier();
    for (int s = 8; s > 0; s = s >> 1) {
        if (ty < s) {
            weightMatrix[ty * 16 + tx] = weightMatrix[ty * 16 + tx] + weightMatrix[(ty + s) * 16 + tx];
        }
        barrier();
    }
    if (ty == 0) {
        partial[by * hid + tx] = weightMatrix[tx];
    }
}

kernel void adjust_weights(global float* delta, global float* ly, global float* w,
                           global float* oldw, int hid) {
    int j = get_global_id(0);
    int i = get_global_id(1);
    if (j < hid) {
        int idx = (i + 1) * (hid + 1) + j + 1;
        float dw = 0.3f * delta[j + 1] * ly[i + 1] + 0.3f * oldw[idx];
        w[idx] = w[idx] + dw;
        oldw[idx] = dw;
    }
}
`

func init() {
	register(&Spec{
		Name:       "Backprop",
		Suite:      "Rodinia 3.1",
		PaperInput: "65536 input nodes",
		SmallScale: 256, DefaultScale: 1024, PaperScale: 65536,
		Make: makeBackprop,
	})
}

func makeBackprop(inN int) *Instance {
	const hid = 16
	inN = roundUp(inN, 16)
	r := rng(1717)
	// Layout mirrors Rodinia: units are 1-indexed, weights[(i)*(hid+1)+j].
	input := randF32s(r, inN+1, 0, 1)
	weights := randF32s(r, (inN+1)*(hid+1), -0.5, 0.5)
	oldw := make([]float32, (inN+1)*(hid+1))
	delta := randF32s(r, hid+1, -0.1, 0.1)

	type outputs struct {
		hidden []float32
		w      []float32
		oldw   []float32
	}
	flatten := func(o outputs) []float32 {
		out := append([]float32(nil), o.hidden...)
		out = append(out, o.w...)
		out = append(out, o.oldw...)
		return out
	}

	return &Instance{
		Tol: 2e-3,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			bi, err := newBufF32(ctx, c, input)
			if err != nil {
				return nil, err
			}
			bw, err := newBufF32(ctx, c, weights)
			if err != nil {
				return nil, err
			}
			numBlocks := inN / 16
			bp, err := c.CreateBuffer(4 * numBlocks * hid)
			if err != nil {
				return nil, err
			}
			prog, err := c.BuildProgram(ctx, backpropSrc)
			if err != nil {
				return nil, err
			}
			kf, err := prog.CreateKernel("layerforward")
			if err != nil {
				return nil, err
			}
			if err := bindArgs(kf, bi, bw, bp, hid); err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, kf,
				cl.G2(16, uint32(numBlocks*16)), cl.G2(16, 16)); err != nil {
				return nil, err
			}
			partial, err := c.ReadF32(ctx, bp, numBlocks*hid)
			if err != nil {
				return nil, err
			}
			// Host-side: sum partials and squash (as Rodinia's host code does).
			hidden := make([]float32, hid+1)
			for j := 0; j < hid; j++ {
				var sum float32
				for b := 0; b < numBlocks; b++ {
					sum += partial[b*hid+j]
				}
				sum += weights[j+1] // bias row 0
				hidden[j+1] = float32(1.0 / (1.0 + math.Exp(-float64(sum))))
			}

			// Adjust weights.
			bd, err := newBufF32(ctx, c, delta)
			if err != nil {
				return nil, err
			}
			bo, err := newBufF32(ctx, c, oldw)
			if err != nil {
				return nil, err
			}
			ka, err := prog.CreateKernel("adjust_weights")
			if err != nil {
				return nil, err
			}
			if err := bindArgs(ka, bd, bi, bw, bo, hid); err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, ka, cl.G2(16, uint32(inN)), cl.G2(16, 16)); err != nil {
				return nil, err
			}
			wOut, err := c.ReadF32(ctx, bw, len(weights))
			if err != nil {
				return nil, err
			}
			oOut, err := c.ReadF32(ctx, bo, len(oldw))
			if err != nil {
				return nil, err
			}
			return flatten(outputs{hidden: hidden, w: wOut, oldw: oOut}), nil
		},
		Native: func() any {
			hidden := make([]float32, hid+1)
			numBlocks := inN / 16
			for j := 0; j < hid; j++ {
				var sum float32
				// Mirror the GPU's block-then-tree order for float parity.
				for b := 0; b < numBlocks; b++ {
					part := make([]float32, 16)
					for ty := 0; ty < 16; ty++ {
						idx := 16*b + ty + 1
						part[ty] = weights[idx*(hid+1)+j+1] * input[idx]
					}
					for s := 8; s > 0; s >>= 1 {
						for ty := 0; ty < s; ty++ {
							part[ty] += part[ty+s]
						}
					}
					sum += part[0]
				}
				sum += weights[j+1]
				hidden[j+1] = float32(1.0 / (1.0 + math.Exp(-float64(sum))))
			}
			w := append([]float32(nil), weights...)
			o := append([]float32(nil), oldw...)
			for i := 0; i < inN; i++ {
				for j := 0; j < hid; j++ {
					idx := (i+1)*(hid+1) + j + 1
					dw := 0.3*delta[j+1]*input[i+1] + 0.3*o[idx]
					w[idx] += dw
					o[idx] = dw
				}
			}
			out := append([]float32(nil), hidden...)
			out = append(out, w...)
			out = append(out, o...)
			return out
		},
	}
}

// --- Nearest Neighbor (Rodinia nn) -----------------------------------------------

const nnSrc = `
kernel void nn_dist(global float* lat, global float* lng, global float* dist,
                    int n, float tlat, float tlng) {
    int i = get_global_id(0);
    if (i < n) {
        float dlat = lat[i] - tlat;
        float dlng = lng[i] - tlng;
        dist[i] = sqrt(dlat * dlat + dlng * dlng);
    }
}
`

func init() {
	register(&Spec{
		Name:       "NearestNeighbor",
		Suite:      "Rodinia 3.1",
		PaperInput: "5 records, 30 lat, 90 long",
		SmallScale: 1 << 10, DefaultScale: 1 << 14, PaperScale: 1 << 16,
		Make: makeNN,
	})
}

func makeNN(n int) *Instance {
	r := rng(1818)
	lat := randF32s(r, n, 0, 60)
	lng := randF32s(r, n, 0, 180)
	const tlat, tlng = float32(30), float32(90)

	return &Instance{
		Tol: 1e-4,
		Sim: func(ctx context.Context, c *cl.Context) (any, error) {
			bla, err := newBufF32(ctx, c, lat)
			if err != nil {
				return nil, err
			}
			blo, err := newBufF32(ctx, c, lng)
			if err != nil {
				return nil, err
			}
			bd, err := c.CreateBuffer(4 * n)
			if err != nil {
				return nil, err
			}
			k, err := kernel1(ctx, c, nnSrc, "nn_dist", bla, blo, bd, n, tlat, tlng)
			if err != nil {
				return nil, err
			}
			if err := c.EnqueueKernel(ctx, k, cl.G1(uint32(roundUp(n, 64))), cl.G1(64)); err != nil {
				return nil, err
			}
			return c.ReadF32(ctx, bd, n)
		},
		Native: func() any {
			out := make([]float32, n)
			for i := range out {
				dlat := lat[i] - tlat
				dlng := lng[i] - tlng
				out[i] = float32(math.Sqrt(float64(dlat*dlat + dlng*dlng)))
			}
			return out
		},
	}
}

// --- clBLAS SGEMM ------------------------------------------------------------------

func init() {
	register(&Spec{
		Name:       "clBLAS-SGEMM",
		Suite:      "clBLAS",
		PaperInput: "1024x1024 matrices",
		SmallScale: 32, DefaultScale: 128, PaperScale: 1024,
		Make: func(scale int) *Instance {
			d := roundUp(scale, 16)
			return makeSgemm(d, d, d, 1919)
		},
	})
}
