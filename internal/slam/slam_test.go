package slam_test

import (
	"context"
	"testing"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
	"mobilesim/internal/platform"
	"mobilesim/internal/slam"
	"mobilesim/internal/stats"
)

var bg = context.Background()

func runConfig(t *testing.T, cfg slam.Config) (*slam.Metrics, stats.GPUStats, stats.SystemStats) {
	t.Helper()
	p, err := platform.New(platform.Config{RAMSize: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := cl.NewContext(p, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := slam.Run(bg, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, sys := p.GPU.Stats()
	return m, gs, sys
}

func TestPipelineRunsAllConfigs(t *testing.T) {
	for _, cfg := range []slam.Config{slam.Standard(1), slam.Fast3(1), slam.Express(1)} {
		cfg := cfg
		cfg.Frames = 3
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			m, gs, sys := runConfig(t, cfg)
			if m.KernelsRun < 10 {
				t.Errorf("only %d kernels ran", m.KernelsRun)
			}
			if uint64(m.KernelsRun) != sys.ComputeJobs {
				t.Errorf("kernels %d != jobs %d", m.KernelsRun, sys.ComputeJobs)
			}
			if gs.LocalLS == 0 {
				t.Error("pipeline should exercise local memory (reduce kernel)")
			}
			if m.FinalResidual < 0 {
				t.Errorf("negative residual %g", m.FinalResidual)
			}
			t.Logf("%s: kernels=%d instr=%d residual=%g", cfg.Name, m.KernelsRun, gs.TotalInstr(), m.FinalResidual)
		})
	}
}

// TestConfigRatiosMatchPaperShape checks Fig 14's shape: fast3 and express
// run small fractions of standard's instruction counts, the local-LS
// fraction shrinks far less than the total (it is concentrated in the
// tracking reduction, which the presets scale less aggressively), and the
// estimated frame rate improves standard -> fast3 -> express.
func TestConfigRatiosMatchPaperShape(t *testing.T) {
	_, std, _ := runConfig(t, slam.Standard(1))
	_, fast, _ := runConfig(t, slam.Fast3(1))
	_, expr, _ := runConfig(t, slam.Express(1))

	ratio := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	fastInstr := ratio(fast.TotalInstr(), std.TotalInstr())
	exprInstr := ratio(expr.TotalInstr(), std.TotalInstr())
	if fastInstr >= 0.35 {
		t.Errorf("fast3 instruction ratio = %.3f, want well below standard", fastInstr)
	}
	if exprInstr >= fastInstr {
		t.Errorf("express (%.3f) should be cheaper than fast3 (%.3f)", exprInstr, fastInstr)
	}
	// Local-LS ratio exceeds the overall instruction ratio (Fig 14's
	// "increased local memory use relative to total instruction count").
	fastLocal := ratio(fast.LocalLS, std.LocalLS)
	if fastLocal <= fastInstr {
		t.Errorf("fast3 local ratio %.3f should exceed instruction ratio %.3f", fastLocal, fastInstr)
	}

	mali := costmodel.MaliG71()
	fpsStd := 1 / mali.Estimate(&std)
	fpsFast := 1 / mali.Estimate(&fast)
	fpsExpr := 1 / mali.Estimate(&expr)
	if !(fpsStd < fpsFast && fpsFast < fpsExpr) {
		t.Errorf("estimated FPS should improve monotonically: %.3g %.3g %.3g", fpsStd, fpsFast, fpsExpr)
	}
	t.Logf("instr ratios: fast3=%.3f express=%.3f; FPS rel: fast3=%.2f express=%.2f",
		fastInstr, exprInstr, fpsFast/fpsStd, fpsExpr/fpsStd)
}
