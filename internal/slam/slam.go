// Package slam implements the paper's SLAMBench use case (§V-E1): a
// KFusion-style dense-SLAM pipeline of nine OpenCL kernels whose dataflow
// is orchestrated by CPU-side code, executed frame by frame on the full
// simulated stack. The original consumes an RGB-D trajectory and runs tens
// of thousands of kernels; the paper's point is that a full-system
// simulator can host such a workload at all, and that its simulated
// metrics track hardware performance across configurations. Input frames
// here are synthetic depth images (an animated sphere over a plane), and
// the three configurations mirror SLAMBench's standard / fast3 / express
// presets: resolution, tracking-iteration and integration-rate knobs.
package slam

import (
	"context"
	"fmt"

	"mobilesim/internal/cl"
)

// Config is one SLAMBench preset.
type Config struct {
	Name string
	// Width and Height are the input depth resolution.
	Width, Height int
	// Levels is the pyramid depth.
	Levels int
	// TrackIters is the per-level ICP iteration count, coarse to fine;
	// len(TrackIters) == Levels.
	TrackIters []int
	// VolumeSize is the TSDF volume edge length.
	VolumeSize int
	// IntegrateEvery integrates each Nth frame.
	IntegrateEvery int
	// Frames is the number of frames processed.
	Frames int
}

// Standard returns the baseline configuration. Scale multiplies the
// resolution (1 = 64x64 input, volume 64: laptop-sized; the original runs
// 320x240).
func Standard(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Name:  "standard",
		Width: 64 * scale, Height: 64 * scale,
		Levels:         3,
		TrackIters:     []int{4, 5, 10}, // coarse..fine, KFusion defaults
		VolumeSize:     32 * scale,
		IntegrateEvery: 1,
		Frames:         8,
	}
}

// Fast3 is the reduced-accuracy preset.
func Fast3(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Name:  "fast3",
		Width: 32 * scale, Height: 32 * scale,
		Levels:         3,
		TrackIters:     []int{4, 4, 6},
		VolumeSize:     16 * scale,
		IntegrateEvery: 2,
		Frames:         8,
	}
}

// Express is the fastest preset.
func Express(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Name:  "express",
		Width: 16 * scale, Height: 16 * scale,
		Levels:         2,
		TrackIters:     []int{3, 4},
		VolumeSize:     8 * scale,
		IntegrateEvery: 4,
		Frames:         8,
	}
}

const kernelsSrc = `
kernel void mm2meters(global int* in, global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = (float)in[i] * 0.001f;
    }
}

kernel void bilateral(global float* in, global float* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        float center = in[y * w + x];
        float sum = 0.0f;
        float wsum = 0.0f;
        for (int dy = -2; dy <= 2; dy++) {
            for (int dx = -2; dx <= 2; dx++) {
                int xx = min(max(x + dx, 0), w - 1);
                int yy = min(max(y + dy, 0), h - 1);
                float v = in[yy * w + xx];
                float dist2 = (float)(dx * dx + dy * dy);
                float diff = v - center;
                float wgt = exp(-dist2 * 0.125f) * exp(-diff * diff * 10.0f);
                sum += v * wgt;
                wsum += wgt;
            }
        }
        out[y * w + x] = sum / wsum;
    }
}

kernel void halfsample(global float* in, global float* out, int ow, int oh) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < ow && y < oh) {
        int iw = ow * 2;
        float s = in[2 * y * iw + 2 * x] + in[2 * y * iw + 2 * x + 1]
                + in[(2 * y + 1) * iw + 2 * x] + in[(2 * y + 1) * iw + 2 * x + 1];
        out[y * ow + x] = s * 0.25f;
    }
}

kernel void depth2vertex(global float* depth, global float* vx, global float* vy, global float* vz,
                         int w, int h, float fx, float fy, float cx, float cy) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        int i = y * w + x;
        float d = depth[i];
        vx[i] = d * ((float)x - cx) / fx;
        vy[i] = d * ((float)y - cy) / fy;
        vz[i] = d;
    }
}

kernel void vertex2normal(global float* vx, global float* vy, global float* vz,
                          global float* nx, global float* ny, global float* nz, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        int xl = max(x - 1, 0);
        int xr = min(x + 1, w - 1);
        int yu = max(y - 1, 0);
        int yd = min(y + 1, h - 1);
        float ax = vx[y * w + xr] - vx[y * w + xl];
        float ay = vy[y * w + xr] - vy[y * w + xl];
        float az = vz[y * w + xr] - vz[y * w + xl];
        float bx = vx[yd * w + x] - vx[yu * w + x];
        float by = vy[yd * w + x] - vy[yu * w + x];
        float bz = vz[yd * w + x] - vz[yu * w + x];
        float cx = ay * bz - az * by;
        float cy = az * bx - ax * bz;
        float cz = ax * by - ay * bx;
        float len = sqrt(cx * cx + cy * cy + cz * cz) + 0.000001f;
        int i = y * w + x;
        nx[i] = cx / len;
        ny[i] = cy / len;
        nz[i] = cz / len;
    }
}

kernel void track(global float* vx, global float* vy, global float* vz,
                  global float* rx, global float* ry, global float* rz,
                  global float* nx, global float* ny, global float* nz,
                  global float* residual, int n, float thresh) {
    int i = get_global_id(0);
    if (i < n) {
        float dx = vx[i] - rx[i];
        float dy = vy[i] - ry[i];
        float dz = vz[i] - rz[i];
        float e = nx[i] * dx + ny[i] * dy + nz[i] * dz;
        if (fabs(e) < thresh) {
            residual[i] = e * e;
        } else {
            residual[i] = 0.0f;
        }
    }
}

kernel void reduce_residual(global float* in, global float* out, int n) {
    local float scratch[256];
    int l = get_local_id(0);
    int g = get_global_id(0);
    float v = 0.0f;
    if (g < n) { v = in[g]; }
    scratch[l] = v;
    barrier();
    for (int s = 128; s > 0; s = s >> 1) {
        if (l < s) { scratch[l] = scratch[l] + scratch[l + s]; }
        barrier();
    }
    if (l == 0) { out[get_group_id(0)] = scratch[0]; }
}

kernel void integrate(global float* vol, global float* wvol, global float* depth,
                      int vsize, int w, int h, float scale) {
    int i = get_global_id(0);
    int total = vsize * vsize * vsize;
    if (i < total) {
        int z = i / (vsize * vsize);
        int rem = i % (vsize * vsize);
        int vy = rem / vsize;
        int vx = rem % vsize;
        int px = vx * w / vsize;
        int py = vy * h / vsize;
        float d = depth[py * w + px];
        float depthVox = (float)z * scale;
        float sdf = d - depthVox;
        if (sdf > -0.1f) {
            float tsdf = fmin(1.0f, sdf * 5.0f);
            float wOld = wvol[i];
            vol[i] = (vol[i] * wOld + tsdf) / (wOld + 1.0f);
            wvol[i] = fmin(wOld + 1.0f, 100.0f);
        }
    }
}

kernel void raycast(global float* vol, global float* out, int vsize, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x < w && y < h) {
        int vx = x * vsize / w;
        int vy = y * vsize / h;
        float prev = 1.0f;
        float hit = 0.0f;
        for (int z = 0; z < vsize; z++) {
            float v = vol[(z * vsize + vy) * vsize + vx];
            if (prev > 0.0f && v <= 0.0f && hit == 0.0f) {
                hit = (float)z;
            }
            prev = v;
        }
        out[y * w + x] = hit;
    }
}
`

// Metrics summarises one pipeline run.
type Metrics struct {
	Config        Config
	KernelsRun    int
	FinalResidual float64
}

// level holds the per-pyramid-level buffers.
type level struct {
	w, h                      int
	depth                     *cl.Buffer
	vx, vy, vz                *cl.Buffer
	nx, ny, nz                *cl.Buffer
	rx, ry, rz, rnx, rny, rnz *cl.Buffer
}

// Run executes the pipeline for cfg.Frames synthetic frames.
func Run(ctx context.Context, c *cl.Context, cfg Config) (*Metrics, error) {
	if len(cfg.TrackIters) != cfg.Levels {
		return nil, fmt.Errorf("slam: %d track iteration counts for %d levels", len(cfg.TrackIters), cfg.Levels)
	}
	prog, err := c.BuildProgram(ctx, kernelsSrc)
	if err != nil {
		return nil, err
	}
	get := func(name string) *cl.Kernel {
		k, kerr := prog.CreateKernel(name)
		if kerr != nil && err == nil {
			err = kerr
		}
		return k
	}
	kMM := get("mm2meters")
	kBil := get("bilateral")
	kHalf := get("halfsample")
	kD2V := get("depth2vertex")
	kV2N := get("vertex2normal")
	kTrack := get("track")
	kReduce := get("reduce_residual")
	kInt := get("integrate")
	kRay := get("raycast")
	if err != nil {
		return nil, err
	}

	w, h := cfg.Width, cfg.Height
	n := w * h
	newBuf := func(elems int) *cl.Buffer {
		b, berr := c.CreateBuffer(4 * elems)
		if berr != nil && err == nil {
			err = berr
		}
		return b
	}
	rawDepth := newBuf(n)
	meters := newBuf(n)
	filtered := newBuf(n)

	levels := make([]*level, cfg.Levels)
	lw, lh := w, h
	for li := 0; li < cfg.Levels; li++ {
		lv := &level{w: lw, h: lh}
		lv.depth = newBuf(lw * lh)
		lv.vx, lv.vy, lv.vz = newBuf(lw*lh), newBuf(lw*lh), newBuf(lw*lh)
		lv.nx, lv.ny, lv.nz = newBuf(lw*lh), newBuf(lw*lh), newBuf(lw*lh)
		lv.rx, lv.ry, lv.rz = newBuf(lw*lh), newBuf(lw*lh), newBuf(lw*lh)
		lv.rnx, lv.rny, lv.rnz = newBuf(lw*lh), newBuf(lw*lh), newBuf(lw*lh)
		levels[li] = lv
		lw /= 2
		lh /= 2
	}
	vs := cfg.VolumeSize
	vol := newBuf(vs * vs * vs)
	wvol := newBuf(vs * vs * vs)
	rayOut := newBuf(n)
	residual := newBuf(n)
	partial := newBuf(roundUp(n, 256) / 256)
	if err != nil {
		return nil, err
	}

	m := &Metrics{Config: cfg}
	enq := func(k *cl.Kernel, global, local [3]uint32, args ...any) error {
		if e := bind(k, args...); e != nil {
			return e
		}
		m.KernelsRun++
		return c.EnqueueKernel(ctx, k, global, local)
	}
	dims2 := func(w, h int) ([3]uint32, [3]uint32) {
		return [3]uint32{uint32(roundUp(w, 8)), uint32(roundUp(h, 8)), 1}, [3]uint32{8, 8, 1}
	}

	const fx, fy = 100.0, 100.0
	cx, cy := float32(w)/2, float32(h)/2

	for frame := 0; frame < cfg.Frames; frame++ {
		// Cancellation between frames is free; mid-frame it falls to the
		// per-kernel clause-boundary soft-stop inside EnqueueKernel.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Camera input (the app writes the frame into the device buffer).
		if err := c.WriteI32(ctx, rawDepth, syntheticDepth(w, h, frame)); err != nil {
			return nil, err
		}

		// Preprocess.
		if err := enq(kMM, [3]uint32{uint32(roundUp(n, 64)), 1, 1}, [3]uint32{64, 1, 1},
			rawDepth, meters, n); err != nil {
			return nil, err
		}
		g, l := dims2(w, h)
		if err := enq(kBil, g, l, meters, filtered, w, h); err != nil {
			return nil, err
		}

		// Pyramid.
		prevDepth := filtered
		for li, lv := range levels {
			if li == 0 {
				lv.depth = filtered
			} else {
				g, l := dims2(lv.w, lv.h)
				if err := enq(kHalf, g, l, prevDepth, lv.depth, lv.w, lv.h); err != nil {
					return nil, err
				}
			}
			prevDepth = lv.depth
			g, l := dims2(lv.w, lv.h)
			scale := float32(int(1) << li)
			if err := enq(kD2V, g, l, lv.depth, lv.vx, lv.vy, lv.vz,
				lv.w, lv.h, float32(fx)/scale, float32(fy)/scale, cx/scale, cy/scale); err != nil {
				return nil, err
			}
			if err := enq(kV2N, g, l, lv.vx, lv.vy, lv.vz, lv.nx, lv.ny, lv.nz, lv.w, lv.h); err != nil {
				return nil, err
			}
		}

		// Tracking (skip frame 0: no reference yet), coarse to fine.
		if frame > 0 {
			for li := cfg.Levels - 1; li >= 0; li-- {
				lv := levels[li]
				ln := lv.w * lv.h
				for it := 0; it < cfg.TrackIters[li]; it++ {
					if err := enq(kTrack, [3]uint32{uint32(roundUp(ln, 64)), 1, 1}, [3]uint32{64, 1, 1},
						lv.vx, lv.vy, lv.vz, lv.rx, lv.ry, lv.rz,
						lv.rnx, lv.rny, lv.rnz, residual, ln, float32(0.2)); err != nil {
						return nil, err
					}
					groups := roundUp(ln, 256) / 256
					if err := enq(kReduce, [3]uint32{uint32(groups * 256), 1, 1}, [3]uint32{256, 1, 1},
						residual, partial, ln); err != nil {
						return nil, err
					}
					sums, rerr := c.ReadF32(ctx, partial, groups)
					if rerr != nil {
						return nil, rerr
					}
					var total float64
					for _, s := range sums {
						total += float64(s)
					}
					m.FinalResidual = total / float64(ln)
				}
			}
		}

		// Integration.
		if frame%cfg.IntegrateEvery == 0 {
			voxels := vs * vs * vs
			if err := enq(kInt, [3]uint32{uint32(roundUp(voxels, 64)), 1, 1}, [3]uint32{64, 1, 1},
				vol, wvol, filtered, vs, w, h, float32(0.02)); err != nil {
				return nil, err
			}
		}

		// Raycast the model for the next frame's reference.
		g, l = dims2(w, h)
		if err := enq(kRay, g, l, vol, rayOut, vs, w, h); err != nil {
			return nil, err
		}

		// New reference = this frame's vertex/normal maps.
		for _, lv := range levels {
			lv.rx, lv.vx = lv.vx, lv.rx
			lv.ry, lv.vy = lv.vy, lv.ry
			lv.rz, lv.vz = lv.vz, lv.rz
			lv.rnx, lv.nx = lv.nx, lv.rnx
			lv.rny, lv.ny = lv.ny, lv.rny
			lv.rnz, lv.nz = lv.nz, lv.rnz
		}
	}
	return m, nil
}

// syntheticDepth renders a moving sphere over a slanted plane, in
// millimetres.
func syntheticDepth(w, h, frame int) []int32 {
	out := make([]int32, w*h)
	cx := float64(w)/2 + float64(frame)*0.8
	cy := float64(h)/2 + float64(frame)*0.3
	r := float64(w) / 4
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Background plane sloping away.
			d := 2000.0 + 4.0*float64(y)
			dx, dy := float64(x)-cx, float64(y)-cy
			if rr := dx*dx + dy*dy; rr < r*r {
				// Sphere bulging toward the camera.
				d = 1200.0 - (r*r-rr)/r*0.5
			}
			out[y*w+x] = int32(d)
		}
	}
	return out
}

func bind(k *cl.Kernel, args ...any) error {
	for i, a := range args {
		var err error
		switch v := a.(type) {
		case *cl.Buffer:
			err = k.SetArgBuffer(i, v)
		case int:
			err = k.SetArgInt(i, int32(v))
		case int32:
			err = k.SetArgInt(i, v)
		case float32:
			err = k.SetArgFloat(i, v)
		default:
			err = fmt.Errorf("slam: unsupported arg %d type %T", i, a)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func roundUp(n, m int) int { return (n + m - 1) / m * m }
