// Package dev implements the platform peripherals the full-system
// environment requires beyond CPU and GPU: a UART console, a programmable
// timer, and a block storage device. The paper's simulator models the
// Versatile Express / Juno platform devices for the same reason — so an
// unmodified software stack finds the hardware it expects.
package dev

import (
	"io"
	"sync"

	"mobilesim/internal/irq"
)

// UART register offsets (PL011-flavoured, minimal).
const (
	UARTData   = 0x00 // write: transmit byte; read: receive byte
	UARTStatus = 0x04 // bit 0: RX has data; bit 1: TX ready (always 1)
	UARTCtrl   = 0x08 // bit 0: RX interrupt enable
)

// UARTSize is the MMIO window size.
const UARTSize = 0x1000

// UART is the console device. Transmitted bytes go to an io.Writer;
// received bytes are pushed by the host via Feed and raise the UART
// interrupt line when enabled.
type UART struct {
	mu     sync.Mutex
	out    io.Writer
	rx     []byte
	rxIRQ  bool
	intc   *irq.Controller
	line   irq.Line
	TxSent uint64
}

// NewUART creates a UART writing transmitted bytes to out (may be nil to
// discard) and signalling the given interrupt line.
func NewUART(out io.Writer, intc *irq.Controller, line irq.Line) *UART {
	return &UART{out: out, intc: intc, line: line}
}

// Feed injects received bytes (host -> guest).
func (u *UART) Feed(b []byte) {
	u.mu.Lock()
	u.rx = append(u.rx, b...)
	raise := u.rxIRQ && u.intc != nil
	u.mu.Unlock()
	if raise {
		u.intc.Assert(u.line)
	}
}

// ReadReg implements mem.Device.
func (u *UART) ReadReg(off uint64, size int) (uint64, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	switch off {
	case UARTData:
		if len(u.rx) == 0 {
			return 0, nil
		}
		b := u.rx[0]
		u.rx = u.rx[1:]
		if len(u.rx) == 0 && u.intc != nil {
			u.intc.Deassert(u.line)
		}
		return uint64(b), nil
	case UARTStatus:
		s := uint64(2) // TX always ready
		if len(u.rx) > 0 {
			s |= 1
		}
		return s, nil
	case UARTCtrl:
		if u.rxIRQ {
			return 1, nil
		}
		return 0, nil
	}
	return 0, nil
}

// WriteReg implements mem.Device.
func (u *UART) WriteReg(off uint64, size int, val uint64) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	switch off {
	case UARTData:
		u.TxSent++
		if u.out != nil {
			_, _ = u.out.Write([]byte{byte(val)})
		}
	case UARTCtrl:
		u.rxIRQ = val&1 != 0
	}
	return nil
}
