package dev

// Serializable device state for platform snapshots. Host-side wiring
// (interrupt controller, bus, console writer) is reconstructed by the
// platform on restore; only guest-visible register and data state is
// captured here.

// TimerState captures the programmable timer.
type TimerState struct {
	Count   uint64
	Compare uint64
	Enabled bool
	Fired   bool
}

// CaptureState snapshots the timer.
func (t *Timer) CaptureState() TimerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimerState{Count: t.count, Compare: t.compare, Enabled: t.enabled, Fired: t.fired}
}

// RestoreState installs captured timer state.
func (t *Timer) RestoreState(st TimerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count, t.compare, t.enabled, t.fired = st.Count, st.Compare, st.Enabled, st.Fired
}

// UARTState captures the console device: pending receive bytes, the RX
// interrupt enable and the transmit counter.
type UARTState struct {
	RX     []byte
	RXIRQ  bool
	TxSent uint64
}

// CaptureState snapshots the UART.
func (u *UART) CaptureState() UARTState {
	u.mu.Lock()
	defer u.mu.Unlock()
	rx := make([]byte, len(u.rx))
	copy(rx, u.rx)
	return UARTState{RX: rx, RXIRQ: u.rxIRQ, TxSent: u.TxSent}
}

// RestoreState installs captured UART state.
func (u *UART) RestoreState(st UARTState) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.rx = append([]byte(nil), st.RX...)
	u.rxIRQ = st.RXIRQ
	u.TxSent = st.TxSent
}

// BlockState captures the block device: descriptor registers, status,
// command counters and the full disk image (the guest can write it).
type BlockState struct {
	Sector uint64
	Addr   uint64
	Count  uint64
	Status uint64
	Reads  uint64
	Writes uint64
	Image  []byte
}

// CaptureState snapshots the block device, including the disk contents.
func (d *Block) CaptureState() BlockState {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := make([]byte, len(d.image))
	copy(img, d.image)
	return BlockState{
		Sector: d.sector, Addr: d.addr, Count: d.count, Status: d.status,
		Reads: d.Reads, Writes: d.Writes, Image: img,
	}
}

// RestoreState installs captured block-device state. The disk image is
// borrowed copy-on-write: restored platforms share the captured bytes
// until their guest issues a write command, which privatizes the image
// first — so forking costs no disk copy and siblings never see each
// other's writes.
func (d *Block) RestoreState(st BlockState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sector, d.addr, d.count, d.status = st.Sector, st.Addr, st.Count, st.Status
	d.Reads, d.Writes = st.Reads, st.Writes
	d.image = st.Image
	d.sharedImage = true
}
