package dev

import (
	"fmt"
	"sync"

	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

// Block device register offsets. The guest programs a simple descriptor
// (sector, RAM address, count) and issues a command; completion raises the
// block interrupt. This stands in for the simulated storage device the
// paper boots its root filesystem from.
const (
	BlkSector  = 0x00 // sector number
	BlkAddr    = 0x08 // physical RAM address for DMA
	BlkCount   = 0x10 // sector count
	BlkCommand = 0x18 // 1 = read, 2 = write
	BlkStatus  = 0x20 // bit 0: done, bit 1: error
	BlkAck     = 0x28 // write: clear status + IRQ
)

// BlkSize is the MMIO window size.
const BlkSize = 0x1000

// SectorSize is the device's sector granularity.
const SectorSize = 512

// Block is a DMA-capable virtual disk backed by an in-memory image.
type Block struct {
	mu     sync.Mutex
	image  []byte
	bus    *mem.Bus
	intc   *irq.Controller
	line   irq.Line
	sector uint64
	addr   uint64
	count  uint64
	status uint64

	// sharedImage marks image as borrowed from a snapshot (shared across
	// restored platforms): the first write command copies it first.
	sharedImage bool

	// Reads and Writes count completed commands.
	Reads, Writes uint64
}

// NewBlock creates a disk with the given image contents (retained, not
// copied) performing DMA through the bus.
func NewBlock(image []byte, bus *mem.Bus, intc *irq.Controller, line irq.Line) *Block {
	return &Block{image: image, bus: bus, intc: intc, line: line}
}

// ReadReg implements mem.Device.
func (d *Block) ReadReg(off uint64, size int) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case BlkSector:
		return d.sector, nil
	case BlkAddr:
		return d.addr, nil
	case BlkCount:
		return d.count, nil
	case BlkStatus:
		return d.status, nil
	}
	return 0, nil
}

// WriteReg implements mem.Device.
func (d *Block) WriteReg(off uint64, size int, val uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case BlkSector:
		d.sector = val
	case BlkAddr:
		d.addr = val
	case BlkCount:
		d.count = val
	case BlkCommand:
		d.execute(val)
	case BlkAck:
		d.status = 0
		if d.intc != nil {
			d.intc.Deassert(d.line)
		}
	}
	return nil
}

func (d *Block) execute(cmd uint64) {
	start := d.sector * SectorSize
	n := d.count * SectorSize
	fail := func() {
		d.status = 2
		if d.intc != nil {
			d.intc.Assert(d.line)
		}
	}
	if start+n > uint64(len(d.image)) || n == 0 {
		fail()
		return
	}
	var err error
	switch cmd {
	case 1:
		err = d.bus.WriteBytes(d.addr, d.image[start:start+n])
		if err == nil {
			d.Reads++
		}
	case 2:
		if d.sharedImage {
			// Copy-on-write: the image is borrowed from a snapshot shared
			// with sibling platforms; privatize it before the first write.
			d.image = append([]byte(nil), d.image...)
			d.sharedImage = false
		}
		err = d.bus.ReadBytes(d.addr, d.image[start:start+n])
		if err == nil {
			d.Writes++
		}
	default:
		err = fmt.Errorf("dev: unknown block command %d", cmd)
	}
	if err != nil {
		fail()
		return
	}
	d.status = 1
	if d.intc != nil {
		d.intc.Assert(d.line)
	}
}
