package dev

import (
	"bytes"
	"testing"

	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

func TestUARTTransmit(t *testing.T) {
	var out bytes.Buffer
	u := NewUART(&out, nil, irq.LineUART)
	for _, b := range []byte("hi") {
		if err := u.WriteReg(UARTData, 1, uint64(b)); err != nil {
			t.Fatal(err)
		}
	}
	if out.String() != "hi" {
		t.Errorf("transmitted %q", out.String())
	}
	if u.TxSent != 2 {
		t.Errorf("TxSent = %d", u.TxSent)
	}
}

func TestUARTReceiveAndStatus(t *testing.T) {
	intc := irq.New()
	intc.Enable(irq.LineUART)
	u := NewUART(nil, intc, irq.LineUART)

	s, _ := u.ReadReg(UARTStatus, 4)
	if s&1 != 0 {
		t.Error("RX bit set with empty fifo")
	}
	if s&2 == 0 {
		t.Error("TX ready bit should always be set")
	}

	// Enable RX interrupts, feed data, expect IRQ.
	if err := u.WriteReg(UARTCtrl, 4, 1); err != nil {
		t.Fatal(err)
	}
	u.Feed([]byte{0x41, 0x42})
	if !intc.Pending() {
		t.Error("feed with rxIRQ enabled should assert the line")
	}
	v, _ := u.ReadReg(UARTData, 1)
	if v != 0x41 {
		t.Errorf("first rx byte = %#x", v)
	}
	v, _ = u.ReadReg(UARTData, 1)
	if v != 0x42 {
		t.Errorf("second rx byte = %#x", v)
	}
	v, _ = u.ReadReg(UARTData, 1)
	if v != 0 {
		t.Errorf("empty fifo read = %#x, want 0", v)
	}
}

func TestTimerCompareIRQ(t *testing.T) {
	intc := irq.New()
	intc.Enable(irq.LineTimer)
	tm := NewTimer(intc, irq.LineTimer)

	if err := tm.WriteReg(TimerCompare, 8, 100); err != nil {
		t.Fatal(err)
	}
	if err := tm.WriteReg(TimerCtrl, 8, 1); err != nil {
		t.Fatal(err)
	}
	tm.Tick(50)
	if intc.Pending() {
		t.Error("fired before compare value")
	}
	tm.Tick(60)
	if !intc.Pending() {
		t.Error("should fire at/after compare value")
	}
	if _, ok := intc.Claim(); !ok {
		t.Fatal("claim failed")
	}
	// Fires only once until re-armed.
	tm.Tick(10)
	if intc.Pending() {
		t.Error("timer should not re-fire without re-arming")
	}
	// Ack + new compare re-arms.
	if err := tm.WriteReg(TimerAck, 8, 0); err != nil {
		t.Fatal(err)
	}
	if err := tm.WriteReg(TimerCompare, 8, 200); err != nil {
		t.Fatal(err)
	}
	tm.Tick(100) // count now 220
	if !intc.Pending() {
		t.Error("re-armed timer should fire")
	}
	if got, _ := tm.ReadReg(TimerCount, 8); got != 220 {
		t.Errorf("count = %d", got)
	}
}

func TestBlockReadWrite(t *testing.T) {
	bus := mem.NewBus(mem.NewRAM(0, 1<<20))
	intc := irq.New()
	intc.Enable(irq.LineBlock)
	image := make([]byte, 8*SectorSize)
	for i := range image {
		image[i] = byte(i)
	}
	d := NewBlock(image, bus, intc, irq.LineBlock)

	// Read sector 2 into RAM at 0x4000.
	mustWrite := func(off, val uint64) {
		t.Helper()
		if err := d.WriteReg(off, 8, val); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(BlkSector, 2)
	mustWrite(BlkAddr, 0x4000)
	mustWrite(BlkCount, 1)
	mustWrite(BlkCommand, 1)

	st, _ := d.ReadReg(BlkStatus, 8)
	if st != 1 {
		t.Fatalf("status = %d, want done", st)
	}
	if !intc.Pending() {
		t.Error("completion should raise IRQ")
	}
	got := make([]byte, SectorSize)
	if err := bus.ReadBytes(0x4000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != image[2*SectorSize] || got[511] != image[2*SectorSize+511] {
		t.Error("DMA read contents wrong")
	}

	// Write RAM back to sector 0.
	if err := bus.WriteBytes(0x5000, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	mustWrite(BlkAck, 0)
	mustWrite(BlkSector, 0)
	mustWrite(BlkAddr, 0x5000)
	mustWrite(BlkCommand, 2)
	if image[0] != 9 || image[1] != 9 || image[2] != 9 {
		t.Error("DMA write contents wrong")
	}
	if d.Reads != 1 || d.Writes != 1 {
		t.Errorf("Reads=%d Writes=%d", d.Reads, d.Writes)
	}
}

func TestBlockErrors(t *testing.T) {
	bus := mem.NewBus(mem.NewRAM(0, 1<<16))
	d := NewBlock(make([]byte, 4*SectorSize), bus, nil, irq.LineBlock)
	set := func(off, val uint64) { _ = d.WriteReg(off, 8, val) }

	// Out-of-range sector.
	set(BlkSector, 100)
	set(BlkAddr, 0)
	set(BlkCount, 1)
	set(BlkCommand, 1)
	if st, _ := d.ReadReg(BlkStatus, 8); st != 2 {
		t.Errorf("out-of-range status = %d, want error", st)
	}

	// Zero count.
	set(BlkAck, 0)
	set(BlkSector, 0)
	set(BlkCount, 0)
	set(BlkCommand, 1)
	if st, _ := d.ReadReg(BlkStatus, 8); st != 2 {
		t.Errorf("zero-count status = %d, want error", st)
	}

	// Bad DMA address.
	set(BlkAck, 0)
	set(BlkCount, 1)
	set(BlkAddr, 0xFFFF_0000)
	set(BlkCommand, 1)
	if st, _ := d.ReadReg(BlkStatus, 8); st != 2 {
		t.Errorf("bad-DMA status = %d, want error", st)
	}

	// Unknown command.
	set(BlkAck, 0)
	set(BlkAddr, 0)
	set(BlkCommand, 7)
	if st, _ := d.ReadReg(BlkStatus, 8); st != 2 {
		t.Errorf("bad-command status = %d, want error", st)
	}
}
