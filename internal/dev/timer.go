package dev

import (
	"sync"

	"mobilesim/internal/irq"
)

// Timer register offsets.
const (
	TimerCount   = 0x00 // read: current tick count
	TimerCompare = 0x08 // write: raise IRQ when count reaches value
	TimerCtrl    = 0x10 // bit 0: enable compare interrupt
	TimerAck     = 0x18 // write: clear pending timer interrupt
)

// TimerSize is the MMIO window size.
const TimerSize = 0x1000

// Timer is a virtual-time counter: it advances when the platform calls
// Tick (typically once per simulation quantum), keeping the simulation
// deterministic rather than wall-clock driven.
type Timer struct {
	mu      sync.Mutex
	count   uint64
	compare uint64
	enabled bool
	fired   bool
	intc    *irq.Controller
	line    irq.Line
}

// NewTimer creates a timer wired to an interrupt line.
func NewTimer(intc *irq.Controller, line irq.Line) *Timer {
	return &Timer{intc: intc, line: line}
}

// Tick advances virtual time by n ticks and fires the compare interrupt
// if armed and reached.
func (t *Timer) Tick(n uint64) {
	t.mu.Lock()
	t.count += n
	fire := t.enabled && !t.fired && t.count >= t.compare
	if fire {
		t.fired = true
	}
	t.mu.Unlock()
	if fire && t.intc != nil {
		t.intc.Assert(t.line)
	}
}

// Count returns current virtual time (for host-side scheduling).
func (t *Timer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// ReadReg implements mem.Device.
func (t *Timer) ReadReg(off uint64, size int) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch off {
	case TimerCount:
		return t.count, nil
	case TimerCompare:
		return t.compare, nil
	case TimerCtrl:
		if t.enabled {
			return 1, nil
		}
	}
	return 0, nil
}

// WriteReg implements mem.Device.
func (t *Timer) WriteReg(off uint64, size int, val uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch off {
	case TimerCompare:
		t.compare = val
		t.fired = false
	case TimerCtrl:
		t.enabled = val&1 != 0
	case TimerAck:
		t.fired = false
		if t.intc != nil {
			t.intc.Deassert(t.line)
		}
	}
	return nil
}
