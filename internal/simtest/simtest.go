// Package simtest provides a GPU-only test harness: guest memory, an
// identity-mapped GPU address space, and direct job submission through the
// register interface. Compiler and workload tests use it to execute CLite
// kernels without booting the full platform (which has its own tests).
package simtest

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
)

// Harness drives a GPU device the way the kernel driver would, minus the
// simulated CPU in the middle.
type Harness struct {
	TB    testing.TB
	Bus   *mem.Bus
	Alloc *mem.PageAllocator
	AS    *mmu.AddressSpace
	Intc  *irq.Controller
	Dev   *gpu.Device
}

// NewMP creates a started harness whose device dispatches workgroups
// across hostThreads concurrent virtual cores — the multi-core
// configuration the race-clean guest memory model is accountable for.
// Tests that hammer shared guest memory use it so GPU concurrency is
// exercised directly, not only through the facade.
func NewMP(tb testing.TB, hostThreads int) *Harness {
	tb.Helper()
	cfg := gpu.DefaultConfig()
	cfg.HostThreads = hostThreads
	return New(tb, cfg)
}

// New creates a started harness; the device is closed via test cleanup.
func New(tb testing.TB, cfg gpu.Config) *Harness {
	tb.Helper()
	bus := mem.NewBus(mem.NewRAM(0, 256<<20))
	alloc, err := mem.NewPageAllocator(1<<20, 224<<20)
	if err != nil {
		tb.Fatal(err)
	}
	as, err := mmu.NewAddressSpace(bus, alloc)
	if err != nil {
		tb.Fatal(err)
	}
	intc := irq.New()
	intc.Enable(irq.LineGPU)
	dev := gpu.NewDevice(cfg, bus, intc, irq.LineGPU)
	dev.Start()
	tb.Cleanup(dev.Close)

	h := &Harness{TB: tb, Bus: bus, Alloc: alloc, AS: as, Intc: intc, Dev: dev}
	h.wr(gpu.RegAS0Transtab, as.Root())
	h.wr(gpu.RegAS0Command, 1)
	h.wr(gpu.RegIRQMask, gpu.IRQJobDone|gpu.IRQJobFault|gpu.IRQMMUFault)
	return h
}

func (h *Harness) wr(off, val uint64) {
	h.TB.Helper()
	if err := h.Dev.WriteReg(off, 8, val); err != nil {
		h.TB.Fatal(err)
	}
}

func (h *Harness) rd(off uint64) uint64 {
	h.TB.Helper()
	v, err := h.Dev.ReadReg(off, 8)
	if err != nil {
		h.TB.Fatal(err)
	}
	return v
}

// AllocBuf allocates n bytes of zeroed guest memory mapped RW for the GPU.
func (h *Harness) AllocBuf(n int) uint64 {
	h.TB.Helper()
	pages := (n + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	pa, err := h.Alloc.AllocPages(pages)
	if err != nil {
		h.TB.Fatal(err)
	}
	if err := h.AS.MapRange(pa, pa, uint64(pages)*mem.PageSize, mmu.PermR|mmu.PermW); err != nil {
		h.TB.Fatal(err)
	}
	return pa
}

// WriteF32 fills a buffer with float32 values.
func (h *Harness) WriteF32(va uint64, vals []float32) {
	h.TB.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if err := h.Bus.WriteBytes(va, buf); err != nil {
		h.TB.Fatal(err)
	}
}

// ReadF32 reads n float32 values.
func (h *Harness) ReadF32(va uint64, n int) []float32 {
	h.TB.Helper()
	buf := make([]byte, 4*n)
	if err := h.Bus.ReadBytes(va, buf); err != nil {
		h.TB.Fatal(err)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// WriteI32 fills a buffer with int32 values.
func (h *Harness) WriteI32(va uint64, vals []int32) {
	h.TB.Helper()
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	if err := h.Bus.WriteBytes(va, buf); err != nil {
		h.TB.Fatal(err)
	}
}

// ReadI32 reads n int32 values.
func (h *Harness) ReadI32(va uint64, n int) []int32 {
	h.TB.Helper()
	buf := make([]byte, 4*n)
	if err := h.Bus.ReadBytes(va, buf); err != nil {
		h.TB.Fatal(err)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}

// WriteU8 fills a buffer with raw bytes.
func (h *Harness) WriteU8(va uint64, vals []byte) {
	h.TB.Helper()
	if err := h.Bus.WriteBytes(va, vals); err != nil {
		h.TB.Fatal(err)
	}
}

// ReadU8 reads n raw bytes.
func (h *Harness) ReadU8(va uint64, n int) []byte {
	h.TB.Helper()
	buf := make([]byte, n)
	if err := h.Bus.ReadBytes(va, buf); err != nil {
		h.TB.Fatal(err)
	}
	return buf
}

// F32Arg converts a float kernel argument to its uniform slot encoding.
func F32Arg(f float32) uint64 { return uint64(math.Float32bits(f)) }

// RunKernel loads the compiled kernel into guest memory and submits one
// compute job with the given dimensions and raw uniform arguments
// (pointer VAs, int values, float bits — one per kernel parameter).
// It fails the test on a GPU fault.
func (h *Harness) RunKernel(k *clc.CompiledKernel, global, local [3]uint32, args []uint64) {
	h.TB.Helper()
	if len(args) != len(k.Params) {
		h.TB.Fatalf("kernel %s wants %d args, got %d", k.Name, len(k.Params), len(args))
	}
	for i := range global {
		if global[i] == 0 {
			global[i] = 1
		}
		if local[i] == 0 {
			local[i] = 1
		}
	}
	progVA := h.AllocBuf(len(k.Binary))
	h.WriteU8(progVA, k.Binary)

	desc := &gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: global,
		LocalSize:  local,
		ShaderVA:   progVA,
		ShaderSize: uint32(len(k.Binary)),
	}
	if k.LocalBytes > 0 {
		desc.LocalMemBytes = k.LocalBytes
		desc.LocalMemVA = h.AllocBuf(int(k.LocalBytes) * h.Dev.Config().ShaderCores)
	}
	if len(args) > 0 {
		argVA := h.AllocBuf(8 * len(args))
		buf := make([]byte, 8*len(args))
		for i, a := range args {
			binary.LittleEndian.PutUint64(buf[8*i:], a)
		}
		h.WriteU8(argVA, buf)
		desc.ArgsVA = argVA
	}
	descVA := h.AllocBuf(gpu.JobDescSize)
	h.WriteU8(descVA, gpu.EncodeDescriptor(desc))
	h.wr(gpu.RegJS0Head, descVA)
	h.wr(gpu.RegJS0Command, 1)

	raw := h.waitIRQ()
	if raw&gpu.IRQJobDone == 0 {
		h.TB.Fatalf("kernel %s: GPU fault (rawstat=%#x, faultaddr=%#x)",
			k.Name, raw, h.rd(gpu.RegAS0FaultAddr))
	}
}

func (h *Harness) waitIRQ() uint32 {
	h.TB.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		select {
		case <-h.Intc.WaitChan():
		case <-time.After(10 * time.Millisecond):
		}
		raw := uint32(h.rd(gpu.RegIRQRawstat))
		if raw != 0 {
			h.wr(gpu.RegIRQClear, uint64(raw))
			h.Intc.Claim()
			return raw
		}
		if time.Now().After(deadline) {
			h.TB.Fatal("timed out waiting for GPU interrupt")
			return 0
		}
	}
}

// CompileAndRun compiles source with the default compiler version and runs
// the named kernel.
func (h *Harness) CompileAndRun(src, kernel string, global, local [3]uint32, args []uint64) *clc.CompiledKernel {
	h.TB.Helper()
	k, err := clc.Compile(src, kernel, clc.Options{})
	if err != nil {
		h.TB.Fatalf("compile %s: %v", kernel, err)
	}
	h.RunKernel(k, global, local, args)
	return k
}
