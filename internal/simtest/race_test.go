package simtest

import (
	"testing"

	"mobilesim/internal/clc"
	"mobilesim/internal/gpu"
)

// Race-stress tests for the guest memory model: kernels that contend on
// shared guest memory from every workgroup at once, dispatched across
// more host threads than shader cores. Under `go test -race` these are
// the direct proof that every GPU-side access path (interpreter, JIT,
// local memory, sub-word stores) goes through the atomic accessors; the
// facade-level suites only reach the same paths indirectly.

// storeContentionSrc makes every thread hammer the same handful of words:
// word 0 takes same-value flag stores (the BFS frontier idiom), words
// 1..4 take per-lane byte stores into one shared word, and each thread
// also keeps a disjoint slot so functional output stays checkable.
const storeContentionSrc = `
kernel void contend(global int* shared, global uchar* bytes, global int* out, int iters) {
    int i = get_global_id(0);
    for (int j = 0; j < iters; j++) {
        if (shared[0] == 0) {
            shared[0] = 1;
        }
        shared[1] = shared[1] + 0;
        bytes[8 + (i % 4)] = 1;
    }
    out[i] = i + shared[0];
}
`

func runStoreContention(t *testing.T, h *Harness, rounds int) {
	const n, iters = 256, 16
	sharedBuf := h.AllocBuf(64)
	byteBuf := h.AllocBuf(64)
	outBuf := h.AllocBuf(4 * n)

	k, err := clc.Compile(storeContentionSrc, "contend", clc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		h.WriteI32(sharedBuf, make([]int32, 16))
		h.WriteU8(byteBuf, make([]byte, 64))
		h.RunKernel(k, [3]uint32{n, 1, 1}, [3]uint32{16, 1, 1},
			[]uint64{sharedBuf, byteBuf, outBuf, iters})

		out := h.ReadI32(outBuf, n)
		for i, v := range out {
			if v != int32(i)+1 {
				t.Fatalf("round %d: out[%d] = %d, want %d", r, i, v, i+1)
			}
		}
		if flag := h.ReadI32(sharedBuf, 1)[0]; flag != 1 {
			t.Fatalf("round %d: shared flag = %d, want 1", r, flag)
		}
		lanes := h.ReadU8(byteBuf+8, 4)
		for lane, b := range lanes {
			if b != 1 {
				t.Fatalf("round %d: neighbouring byte %d lost (= %d)", r, lane, b)
			}
		}
	}
}

// TestStoreContentionMultiCore loops a store-contention kernel across
// repeated dispatches (the -count idiom, inlined so one `go test -race`
// run already stresses many schedules) on an over-committed device.
func TestStoreContentionMultiCore(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 4
	}
	runStoreContention(t, NewMP(t, 8), rounds)
}

// TestStoreContentionOvercommit drives more virtual cores than shader
// cores, so guest-slot local memory and host shadow local memory coexist
// while the same guest words are contended.
func TestStoreContentionOvercommit(t *testing.T) {
	runStoreContention(t, NewMP(t, 19), 5)
}

// TestStoreContentionJIT runs the same contention through the closure-JIT
// engine: the compiled load/store closures must hit the identical atomic
// fast path.
func TestStoreContentionJIT(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.HostThreads = 8
	cfg.Engine = gpu.EngineJIT
	runStoreContention(t, New(t, cfg), 5)
}

// TestStoreContentionInterp pins the reference interpreter explicitly (the
// device default is the warp engine, which the other contention tests
// already cover).
func TestStoreContentionInterp(t *testing.T) {
	cfg := gpu.DefaultConfig()
	cfg.HostThreads = 8
	cfg.Engine = gpu.EngineInterp
	runStoreContention(t, New(t, cfg), 5)
}
