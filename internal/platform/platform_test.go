package platform_test

import (
	"bytes"
	"strings"
	"testing"

	"mobilesim/internal/asm"
	"mobilesim/internal/cpu"
	"mobilesim/internal/dev"
	"mobilesim/internal/mem"
	"mobilesim/internal/mmu"
	"mobilesim/internal/platform"
)

func TestBootAndFirmwareLoaded(t *testing.T) {
	p, err := platform.New(platform.Config{RAMSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if len(p.CPUs) != 4 {
		t.Errorf("default core count = %d", len(p.CPUs))
	}
	for _, name := range []string{"memcpy", "memset", "store64", "load64", "gpu_isr", "gpu_submit", "gpu_init", "gpu_status"} {
		if _, err := p.Firmware.Entry(name); err != nil {
			t.Errorf("firmware routine %s missing: %v", name, err)
		}
	}
	// Firmware routines run.
	if _, err := p.CPUs[0].CallRoutine(p.Firmware.MustEntry("memset"),
		platform.RAMBase+0x20_0000, 0xAB, 64); err != nil {
		t.Fatal(err)
	}
	v, err := p.Bus.Read(platform.RAMBase+0x20_0000, 1)
	if err != nil || v != 0xAB {
		t.Errorf("memset result: %v %#x", err, v)
	}
}

func TestGuestHelloWorldThroughUART(t *testing.T) {
	var console bytes.Buffer
	p, err := platform.New(platform.Config{RAMSize: 64 << 20, ConsoleOut: &console})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A bare-metal guest program printing over the UART.
	prog, err := asm.Assemble(`
main:
    movz x1, #0x1000, lsl #16   // UART base
    movz x2, #72                // 'H'
    strw x2, [x1]
    movz x2, #105               // 'i'
    strw x2, [x1]
    movz x2, #10                // newline
    strw x2, [x1]
    hlt
`, platform.RAMBase+0x40_0000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bus.WriteBytes(prog.Base, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := p.CPUs[1]
	c.Reset(prog.MustEntry("main"))
	if r := c.Run(1000); r != cpu.StopHalted {
		t.Fatalf("guest stopped with %v (%v)", r, c.Err())
	}
	if console.String() != "Hi\n" {
		t.Errorf("console output %q", console.String())
	}
}

// TestGuestWithMMUAndTimerIRQ boots a guest that builds page tables,
// enables translation, installs a vector table, unmasks the timer
// interrupt and services it — the full-system CPU feature set end to end.
func TestGuestWithMMUAndTimerIRQ(t *testing.T) {
	p, err := platform.New(platform.Config{RAMSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Host-side "bootloader" builds an identity map for RAM + devices (as
	// early boot assembly would).
	as, err := mmu.NewAddressSpace(p.Bus, p.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(platform.RAMBase, platform.RAMBase, 16<<20,
		mmu.PermR|mmu.PermW|mmu.PermX); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(platform.TimerBase, platform.TimerBase, dev.TimerSize,
		mmu.PermR|mmu.PermW); err != nil {
		t.Fatal(err)
	}

	// Guest: vectors at +0x0/+0x80; main enables MMU, arms the timer,
	// unmasks IRQs and waits; the IRQ handler acknowledges the timer and
	// sets x20.
	code := `
vectors:
    b sync_handler
    .zero 124
irq_vec:
    b irq_handler
    .zero 124
main:
    msr ttbr0, x0          // x0 = table root (host-provided)
    msr vbar, x1           // x1 = vectors base
    movz x2, #1
    msr sctlr, x2          // MMU on
    msr ie, x2             // interrupts on
    movz x3, #0x1001, lsl #16   // timer base
    movz x4, #100
    strx x4, [x3, #8]      // compare = 100
    movz x4, #1
    strw x4, [x3, #0x10]   // enable
spin:
    cmpi x20, #0
    b.eq spin
    hlt
sync_handler:
    hlt
irq_handler:
    movz x3, #0x1001, lsl #16
    strw xzr, [x3, #0x18]  // ack
    movz x20, #1
    eret
`
	prog, err := asm.Assemble(code, platform.RAMBase+0x50_0000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bus.WriteBytes(prog.Base, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := p.CPUs[0]
	p.Intc.Enable(2) // wrong line guard: enable timer line properly below
	p.Intc.Enable(1)
	c.X[0] = as.Root()
	c.X[1] = prog.MustEntry("vectors")
	c.X[20] = 0
	c.Reset(prog.MustEntry("main"))

	// Run in slices, advancing the virtual timer between them.
	for i := 0; i < 100 && !c.Halted(); i++ {
		c.Run(10_000)
		p.Timer.Tick(20)
	}
	if !c.Halted() {
		t.Fatalf("guest never completed: pc=%#x x20=%d", c.PC, c.X[20])
	}
	if c.Err() != nil {
		t.Fatalf("guest stopped on error: %v", c.Err())
	}
	if c.X[20] != 1 {
		t.Error("IRQ handler never ran")
	}
	if !c.Walker().Enabled() {
		t.Error("MMU should be enabled")
	}
	if c.IRQs == 0 {
		t.Error("no IRQ taken")
	}
}

func TestBlockDeviceRoundTripFromGuest(t *testing.T) {
	image := make([]byte, 16*dev.SectorSize)
	copy(image[dev.SectorSize:], []byte("sector-one-data"))
	p, err := platform.New(platform.Config{RAMSize: 64 << 20, DiskImage: image})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Guest reads sector 1 into RAM via MMIO-programmed DMA.
	prog, err := asm.Assemble(`
main:
    movz x1, #0x1002, lsl #16   // block device base
    movz x2, #1
    strx x2, [x1]               // sector = 1
    movz x3, #0x8030, lsl #16   // DMA target
    strx x3, [x1, #8]
    strx x2, [x1, #0x10]        // count = 1
    strx x2, [x1, #0x18]        // command = read
    ldrx x4, [x1, #0x20]        // status
    hlt
`, platform.RAMBase+0x60_0000)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Bus.WriteBytes(prog.Base, prog.Code); err != nil {
		t.Fatal(err)
	}
	c := p.CPUs[2]
	c.Reset(prog.MustEntry("main"))
	if r := c.Run(1000); r != cpu.StopHalted {
		t.Fatalf("run: %v (%v)", r, c.Err())
	}
	if c.X[4] != 1 {
		t.Fatalf("status = %d, want done", c.X[4])
	}
	got := make([]byte, 15)
	if err := p.Bus.ReadBytes(0x8030_0000, got); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(got), "sector-one-data") {
		t.Errorf("DMA data %q", got)
	}
}

func TestMemoryMapNoOverlaps(t *testing.T) {
	p, err := platform.New(platform.Config{RAMSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Each device answers at its base; RAM answers at its base.
	for _, base := range []uint64{platform.UARTBase, platform.TimerBase,
		platform.BlockBase, platform.GPUBase} {
		if _, err := p.Bus.Read(base, 4); err != nil {
			t.Errorf("device at %#x unreachable: %v", base, err)
		}
	}
	if _, err := p.Bus.Read(platform.RAMBase, 8); err != nil {
		t.Errorf("RAM unreachable: %v", err)
	}
	if _, err := p.Bus.Read(0x7000_0000, 4); err == nil {
		t.Error("hole in the map should fault")
	}
	_ = mem.PageSize
}
