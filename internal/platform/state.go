package platform

import (
	"fmt"

	"mobilesim/internal/asm"
	"mobilesim/internal/cpu"
	"mobilesim/internal/dev"
	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

// State is the full captured platform: guest memory (as an immutable,
// sharable image), the physical page allocator, every CPU core's
// architectural state, the interrupt controller, the peripherals and the
// GPU. It is what a platform snapshot serialises and what copy-on-write
// forks are built from. The platform must be quiescent when captured (no
// job chain executing, no guest call in flight).
type State struct {
	RAM   *mem.Image
	Alloc mem.AllocState
	CPUs  []cpu.State
	IRQ   irq.State
	Timer dev.TimerState
	UART  dev.UARTState
	Block dev.BlockState
	GPU   gpu.State

	// Firmware carries the assembled guest-helper program's geometry and
	// symbol table so a restored platform can call routines without
	// reassembling; the code bytes themselves live in the RAM image (and
	// are kept here too so the serialized form is self-contained).
	FirmwareBase uint64
	FirmwareCode []byte
	FirmwareSyms map[string]uint64
}

// Capture snapshots the platform. The guest RAM image covers everything
// up to the page allocator's high watermark (and the RAM's own dirty
// watermark, whichever is higher) — every byte a correct guest can have
// written.
func (p *Platform) Capture() (*State, error) {
	if p.closed {
		return nil, fmt.Errorf("platform: cannot capture a closed platform")
	}
	img, err := p.RAM.CaptureImage(p.Alloc.HighWater())
	if err != nil {
		return nil, err
	}
	st := &State{
		RAM:   img,
		Alloc: p.Alloc.State(),
		IRQ:   p.Intc.CaptureState(),
		Timer: p.Timer.CaptureState(),
		UART:  p.UART.CaptureState(),
		Block: p.Disk.CaptureState(),
		GPU:   p.GPU.CaptureState(),

		FirmwareBase: p.Firmware.Base,
		FirmwareCode: append([]byte(nil), p.Firmware.Code...),
		FirmwareSyms: make(map[string]uint64, len(p.Firmware.Symbols)),
	}
	for name, addr := range p.Firmware.Symbols {
		st.FirmwareSyms[name] = addr
	}
	for _, c := range p.CPUs {
		st.CPUs = append(st.CPUs, c.CaptureState())
	}
	return st, nil
}

// NewFromState builds a running platform from captured state: guest
// memory is a copy-on-write fork of the state's RAM image (many restored
// platforms share the image's pages until they write), and no guest code
// runs — the boot work the snapshot captured is not repeated. cfg
// supplies only host-side wiring (console writer) and GPU instrumentation
// knobs; the platform shape (RAM size, core count, disk) comes from the
// state. Callers must Close the platform as usual.
func NewFromState(cfg Config, st *State) (*Platform, error) {
	if cfg.RAMSize != 0 && cfg.RAMSize != st.RAM.Size() {
		return nil, fmt.Errorf("platform: config RAM %d MiB does not match snapshot %d MiB",
			cfg.RAMSize>>20, st.RAM.Size()>>20)
	}
	if cfg.GPU.ShaderCores == 0 {
		cfg.GPU = gpu.DefaultConfig()
	}

	ram := mem.ForkRAM(st.RAM)
	bus := mem.NewBus(ram)
	intc := irq.New()

	p := &Platform{Bus: bus, RAM: ram, Intc: intc}

	p.UART = dev.NewUART(cfg.ConsoleOut, intc, irq.LineUART)
	if err := bus.MapDevice("uart", UARTBase, dev.UARTSize, p.UART); err != nil {
		return nil, err
	}
	p.UART.RestoreState(st.UART)
	p.Timer = dev.NewTimer(intc, irq.LineTimer)
	if err := bus.MapDevice("timer", TimerBase, dev.TimerSize, p.Timer); err != nil {
		return nil, err
	}
	p.Timer.RestoreState(st.Timer)
	p.Disk = dev.NewBlock(nil, bus, intc, irq.LineBlock)
	if err := bus.MapDevice("block", BlockBase, dev.BlkSize, p.Disk); err != nil {
		return nil, err
	}
	p.Disk.RestoreState(st.Block)

	alloc, err := mem.NewPageAllocatorFromState(st.Alloc)
	if err != nil {
		return nil, err
	}
	p.Alloc = alloc

	// Restore the interrupt controller before the GPU: the GPU's restore
	// re-asserts its line when an unmasked interrupt was pending, and the
	// controller's enable mask must already be in place.
	intc.RestoreState(st.IRQ)

	p.GPU = gpu.NewDevice(cfg.GPU, bus, intc, irq.LineGPU)
	if err := bus.MapDevice("gpu", GPUBase, gpu.RegWindowSize, p.GPU); err != nil {
		return nil, err
	}
	p.GPU.Start()
	p.GPU.RestoreState(st.GPU)

	for i, cs := range st.CPUs {
		core := cpu.NewCore(i, bus, intc)
		core.RestoreState(cs)
		p.CPUs = append(p.CPUs, core)
	}

	// The program's code and symbols are borrowed from the (immutable)
	// state: firmware is never patched after assembly, and forking must
	// stay allocation-light.
	p.Firmware = &asm.Program{
		Base:    st.FirmwareBase,
		Code:    st.FirmwareCode,
		Symbols: st.FirmwareSyms,
	}
	return p, nil
}
