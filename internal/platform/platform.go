// Package platform assembles the full simulated system (Fig 5 of the
// paper): VA64 CPU cores, the Bifrost-style GPU, the interrupt controller
// and platform devices (UART, timer, block storage), all sharing one
// physical memory. It stands in for the Arm Versatile Express / Juno
// platforms the paper models, augmented with a Mali-G71.
package platform

import (
	"fmt"
	"io"

	"mobilesim/internal/asm"
	"mobilesim/internal/cpu"
	"mobilesim/internal/dev"
	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

// Physical memory map.
const (
	RAMBase = 0x8000_0000

	UARTBase  = 0x1000_0000
	TimerBase = 0x1001_0000
	BlockBase = 0x1002_0000
	GPUBase   = 0x1003_0000

	// FirmwareBase is where the guest helper routines (memcpy, register
	// accessors, ISR stubs) are loaded.
	FirmwareBase = RAMBase + 0x1000

	// heapBase is the first allocatable page, above the firmware image.
	heapBase = RAMBase + 0x10_0000
)

// Config selects the platform shape.
type Config struct {
	// RAMSize is main memory size in bytes (default 512 MiB).
	RAMSize uint64
	// Cores is the CPU core count (default 4).
	Cores int
	// GPU configures the simulated GPU.
	GPU gpu.Config
	// ConsoleOut receives UART output (nil discards).
	ConsoleOut io.Writer
	// DiskImage backs the block device (nil for a small empty disk).
	DiskImage []byte
}

// Platform is the assembled system.
type Platform struct {
	Bus   *mem.Bus
	RAM   *mem.RAM
	Alloc *mem.PageAllocator
	Intc  *irq.Controller
	UART  *dev.UART
	Timer *dev.Timer
	Disk  *dev.Block
	GPU   *gpu.Device
	CPUs  []*cpu.Core

	// Firmware holds the assembled guest helper routines.
	Firmware *asm.Program

	closed bool
}

// New builds and starts a platform. Callers must Close it.
func New(cfg Config) (*Platform, error) {
	if cfg.RAMSize == 0 {
		cfg.RAMSize = 512 << 20
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.GPU.ShaderCores == 0 {
		cfg.GPU = gpu.DefaultConfig()
	}

	// Main memory comes from the recycling pool: platform teardown scrubs
	// only the dirtied prefix, so short-lived platforms (benchmark
	// iterations, Batch sessions) skip the multi-hundred-MiB clear.
	ram := mem.AcquireRAM(RAMBase, cfg.RAMSize)
	bus := mem.NewBus(ram)
	intc := irq.New()

	p := &Platform{Bus: bus, RAM: ram, Intc: intc}

	p.UART = dev.NewUART(cfg.ConsoleOut, intc, irq.LineUART)
	if err := bus.MapDevice("uart", UARTBase, dev.UARTSize, p.UART); err != nil {
		return nil, err
	}
	p.Timer = dev.NewTimer(intc, irq.LineTimer)
	if err := bus.MapDevice("timer", TimerBase, dev.TimerSize, p.Timer); err != nil {
		return nil, err
	}
	disk := cfg.DiskImage
	if disk == nil {
		disk = make([]byte, 64*dev.SectorSize)
	}
	p.Disk = dev.NewBlock(disk, bus, intc, irq.LineBlock)
	if err := bus.MapDevice("block", BlockBase, dev.BlkSize, p.Disk); err != nil {
		return nil, err
	}
	p.GPU = gpu.NewDevice(cfg.GPU, bus, intc, irq.LineGPU)
	if err := bus.MapDevice("gpu", GPUBase, gpu.RegWindowSize, p.GPU); err != nil {
		return nil, err
	}
	p.GPU.Start()

	alloc, err := mem.NewPageAllocator(heapBase, cfg.RAMSize-(heapBase-RAMBase))
	if err != nil {
		return nil, err
	}
	p.Alloc = alloc

	for i := 0; i < cfg.Cores; i++ {
		p.CPUs = append(p.CPUs, cpu.NewCore(i, bus, intc))
	}

	fw, err := asm.Assemble(firmwareSource, FirmwareBase)
	if err != nil {
		return nil, fmt.Errorf("platform: firmware assembly failed: %w", err)
	}
	if err := bus.WriteBytes(FirmwareBase, fw.Code); err != nil {
		return nil, err
	}
	p.Firmware = fw
	return p, nil
}

// Close stops background machinery (the GPU's Job Manager) and recycles
// main memory. Everything a correct guest can dirty lies below the page
// allocator's high watermark (the fixed firmware region sits below
// heapBase, which is always scrubbed too), so only that prefix needs
// clearing before the backing store is reused. Close is idempotent; the
// platform must not be used afterwards.
func (p *Platform) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.GPU.Close()
	dirty := uint64(heapBase)
	if hw := p.Alloc.HighWater(); hw > dirty {
		dirty = hw
	}
	p.RAM.Recycle(dirty)
}

// firmwareSource holds the guest-side helper routines the driver and
// runtime execute on the simulated CPU. Keeping this work in guest code is
// what makes the CPU-side cost of the software stack real and measurable
// (Fig 9): buffer copies and descriptor writes scale with input size and
// run through the CPU simulator's execution engine.
const firmwareSource = `
// memcpy(x0=dst, x1=src, x2=len) -> x0=dst
memcpy:
    mov   x4, x0
    cmpi  x2, #8
    b.lo  mc_tail
mc_loop8:
    ldrx  x3, [x1]
    strx  x3, [x0]
    addi  x0, x0, #8
    addi  x1, x1, #8
    subi  x2, x2, #8
    cmpi  x2, #8
    b.hs  mc_loop8
mc_tail:
    cmpi  x2, #0
    b.eq  mc_done
mc_tloop:
    ldrb  x3, [x1]
    strb  x3, [x0]
    addi  x0, x0, #1
    addi  x1, x1, #1
    subi  x2, x2, #1
    cmpi  x2, #0
    b.ne  mc_tloop
mc_done:
    mov   x0, x4
    ret

// memset(x0=dst, x1=byte, x2=len) -> x0=dst
memset:
    mov   x4, x0
    cmpi  x2, #0
    b.eq  ms_done
ms_loop:
    strb  x1, [x0]
    addi  x0, x0, #1
    subi  x2, x2, #1
    cmpi  x2, #0
    b.ne  ms_loop
ms_done:
    mov   x0, x4
    ret

// store64(x0=addr, x1=val)
store64:
    strx  x1, [x0]
    ret

// store32(x0=addr, x1=val)
store32:
    strw  x1, [x0]
    ret

// load32(x0=addr) -> x0
load32:
    ldrw  x0, [x0]
    ret

// load64(x0=addr) -> x0
load64:
    ldrx  x0, [x0]
    ret

// gpu_submit(x0=JS0_HEAD reg addr, x1=chain head VA)
// Writes the chain head and rings the job slot doorbell.
gpu_submit:
    strx  x1, [x0]
    movz  x2, #1
    strw  x2, [x0, #8]
    ret

// gpu_isr(x0=GPU reg base) -> x0 = rawstat
// Reads and acknowledges the GPU interrupt, as the kernel driver's
// interrupt handler does.
gpu_isr:
    ldrw  x1, [x0, #4]
    strw  x1, [x0, #8]
    mov   x0, x1
    ret

// gpu_init(x0=GPU reg base, x1=AS0 translation table root)
// Soft-resets the GPU, programs the address space and unmasks interrupts.
gpu_init:
    movz  x2, #1
    strw  x2, [x0, #0x20]       // GPU_CMD: soft reset
    strx  x1, [x0, #0x200]      // AS0_TRANSTAB
    strw  x2, [x0, #0x208]      // AS0_COMMAND: apply
    movz  x2, #15
    strw  x2, [x0, #0xC]        // IRQ_MASK: done|fault|mmu|stopped
    ret

// gpu_softstop(x0=GPU reg base)
// Requests a soft-stop of the active job chain (JS0_COMMAND = 2); the
// GPU acknowledges with a stopped interrupt once the shader cores reach a
// clause boundary.
gpu_softstop:
    movz  x1, #2
    strw  x1, [x0, #0x108]      // JS0_COMMAND: soft-stop
    ret

// gpu_status(x0=GPU reg base) -> x0 = JS0_STATUS
gpu_status:
    ldrw  x0, [x0, #0x110]
    ret
`
