package experiments

import (
	"context"
	"fmt"
	"io"

	"mobilesim/internal/cl"
	"mobilesim/internal/clc"
	"mobilesim/internal/platform"
	"mobilesim/internal/workloads"
)

// matrixMulSrc is the MatrixMul kernel of Fig 1: the sample's 2x4
// register-blocked formulation, whose constant-offset element accesses are
// where compiler generations differ most (address folding, clause packing,
// hazard padding, temp promotion).
const matrixMulSrc = `
kernel void matrixmul(global float* a, global float* b, global float* c, int n) {
    int col = get_global_id(0) * 4;
    int row = get_global_id(1) * 2;
    float acc00 = 0.0f; float acc01 = 0.0f; float acc02 = 0.0f; float acc03 = 0.0f;
    float acc10 = 0.0f; float acc11 = 0.0f; float acc12 = 0.0f; float acc13 = 0.0f;
    for (int i = 0; i < n; i++) {
        float a0 = a[row * n + i];
        float a1 = a[(row + 1) * n + i];
        int bi = i * n + col;
        float b0 = b[bi];
        float b1 = b[bi + 1];
        float b2 = b[bi + 2];
        float b3 = b[bi + 3];
        acc00 += a0 * b0; acc01 += a0 * b1; acc02 += a0 * b2; acc03 += a0 * b3;
        acc10 += a1 * b0; acc11 += a1 * b1; acc12 += a1 * b2; acc13 += a1 * b3;
    }
    int ci = row * n + col;
    c[ci] = acc00; c[ci + 1] = acc01; c[ci + 2] = acc02; c[ci + 3] = acc03;
    ci = (row + 1) * n + col;
    c[ci] = acc10; c[ci + 1] = acc11; c[ci + 2] = acc12; c[ci + 3] = acc13;
}
`

// Fig1Row is one compiler version's static metrics relative to 5.6.
type Fig1Row struct {
	Version     string
	ArithCycles float64
	ArithInstrs float64
	LSCycles    float64
	LSInstrs    float64
	Registers   float64
	Absolute    clc.StaticReport
}

// Fig1 compiles MatrixMul with every compiler version and reports the
// offline-compiler metrics relative to version 5.6, as Fig 1 does.
func Fig1(w io.Writer) ([]Fig1Row, error) {
	header(w, "Fig 1: MatrixMul across OpenCL compiler versions (relative to 5.6)")
	var base clc.StaticReport
	var rows []Fig1Row
	for i, ver := range clc.VersionNames() {
		k, err := clc.Compile(matrixMulSrc, "matrixmul", clc.Options{Version: ver})
		if err != nil {
			return nil, err
		}
		r := k.Report
		if i == 0 {
			base = r
		}
		rel := func(v, b int) float64 {
			if b == 0 {
				return 0
			}
			return float64(v) / float64(b)
		}
		rows = append(rows, Fig1Row{
			Version:     ver,
			ArithCycles: rel(r.ArithCycles, base.ArithCycles),
			ArithInstrs: rel(r.ArithInstrs, base.ArithInstrs),
			LSCycles:    rel(r.LSCycles, base.LSCycles),
			LSInstrs:    rel(r.LSInstrs, base.LSInstrs),
			Registers:   rel(r.Registers, base.Registers),
			Absolute:    r,
		})
	}
	tw := table(w)
	fmt.Fprintln(tw, "version\tarith cycles\tarith instr\tLS cycles\tLS instr\tregisters")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.Version, r.ArithCycles, r.ArithInstrs, r.LSCycles, r.LSInstrs, r.Registers)
	}
	return rows, tw.Flush()
}

// Fig6 runs BFS with CFG collection and renders the divergence-annotated
// control-flow graph of the BFS step kernel.
func Fig6(ctx context.Context, w io.Writer, opt Options) (string, error) {
	header(w, "Fig 6: BFS divergence control-flow graph")
	spec, err := workloads.ByName("BFS")
	if err != nil {
		return "", err
	}
	cfg := opt.gpuConfig()
	cfg.CollectCFG = true
	p, err := platform.New(platform.Config{RAMSize: 512 << 20, GPU: cfg})
	if err != nil {
		return "", err
	}
	defer p.Close()
	c, err := cl.NewContext(p, opt.CompilerVersion)
	if err != nil {
		return "", err
	}
	inst := spec.Make(opt.scaleOf(spec))
	res, err := inst.Run(ctx, c, spec.Name, true)
	if err != nil {
		return "", err
	}
	if !res.Verified {
		return "", fmt.Errorf("BFS failed verification: %w", res.VerifyErr)
	}
	graph := p.GPU.CFGGraph()
	rendered := graph.Render()
	fmt.Fprint(w, rendered)
	gs, _ := p.GPU.Stats()
	fmt.Fprintf(w, "branches=%d divergent=%d (%.1f%%)\n",
		gs.Branches, gs.DivergentBranches,
		100*float64(gs.DivergentBranches)/float64(max64(gs.Branches, 1)))
	return rendered, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
