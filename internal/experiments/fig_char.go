package experiments

import (
	"context"
	"fmt"
	"io"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
	"mobilesim/internal/platform"
	"mobilesim/internal/slam"
	"mobilesim/internal/stats"
	"mobilesim/internal/workloads"
)

// characterisation benchmarks: the kernels appearing in Figs 11-13.
var charBenchmarks = []string{
	"BinarySearch", "BinomialOption", "BitonicSort", "DCT", "DwtHaar1D",
	"FloydWarshall", "MatrixTranspose", "RecursiveGaussian", "Reduction",
	"ScanLargeArrays", "SobelFilter", "URNG",
	"Backprop", "BFS", "Cutcp", "NearestNeighbor", "SGEMM", "SPMV", "Stencil",
}

// CharRow couples a benchmark with its execution statistics.
type CharRow struct {
	Name string
	GS   stats.GPUStats
}

// runCharacterisation executes the benchmark set once, reusing results
// across Figs 11-13.
func runCharacterisation(ctx context.Context, opt Options) ([]CharRow, error) {
	var rows []CharRow
	for _, name := range charBenchmarks {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out, err := runOne(ctx, spec, opt, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CharRow{Name: name, GS: out.gs})
	}
	return rows, nil
}

// Fig11 prints the instruction-mix breakdown (arithmetic / load-store /
// empty slots / control flow) per benchmark.
func Fig11(ctx context.Context, w io.Writer, opt Options) ([]CharRow, error) {
	rows, err := runCharacterisation(ctx, opt)
	if err != nil {
		return nil, err
	}
	PrintFig11(w, rows)
	return rows, nil
}

// PrintFig11 renders precomputed characterisation rows as Fig 11.
func PrintFig11(w io.Writer, rows []CharRow) {
	header(w, "Fig 11: instruction mix (fractions of executed slots)")
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tarith\tload/store\tnop\tcontrol-flow")
	for _, r := range rows {
		a, ls, nop, cf := r.GS.MixFractions()
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Name, 100*a, 100*ls, 100*nop, 100*cf)
	}
	tw.Flush()
}

// Fig12 prints the data-access breakdown per benchmark.
func Fig12(ctx context.Context, w io.Writer, opt Options) ([]CharRow, error) {
	rows, err := runCharacterisation(ctx, opt)
	if err != nil {
		return nil, err
	}
	PrintFig12(w, rows)
	return rows, nil
}

// PrintFig12 renders precomputed rows as Fig 12.
func PrintFig12(w io.Writer, rows []CharRow) {
	header(w, "Fig 12: data access breakdown (share of all data accesses)")
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\ttemp\tGRF read\tGRF write\tconst read\tROM\tmain memory")
	for _, r := range rows {
		f := r.GS.DataAccessFractions()
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Name, 100*f[0], 100*f[1], 100*f[2], 100*f[3], 100*f[4], 100*f[5])
	}
	tw.Flush()
}

// Fig13 prints clause-size distribution statistics per benchmark.
func Fig13(ctx context.Context, w io.Writer, opt Options) ([]CharRow, error) {
	rows, err := runCharacterisation(ctx, opt)
	if err != nil {
		return nil, err
	}
	PrintFig13(w, rows)
	return rows, nil
}

// PrintFig13 renders precomputed rows as Fig 13 (box-plot quartiles).
func PrintFig13(w io.Writer, rows []CharRow) {
	header(w, "Fig 13: executed clause size distribution (slots)")
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tmin\tq1\tmedian\tq3\tmax\tmean")
	for _, r := range rows {
		min, q1, med, q3, max := r.GS.ClauseSizeQuartiles()
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			r.Name, min, q1, med, q3, max, r.GS.AvgClauseSize())
	}
	tw.Flush()
}

// Fig14Row is one SLAMBench configuration's metrics relative to standard.
type Fig14Row struct {
	Config     string
	ArithInstr float64
	CFInstr    float64
	ConstReads float64
	CtrlRegs   float64
	GRFAcc     float64
	GlobalLS   float64
	Interrupts float64
	Kernels    float64
	LocalLS    float64
	NOPInstr   float64
	NumClauses float64
	NumWG      float64
	PagesAcc   float64
	ROMReads   float64
	TempAcc    float64
	AvgClause  float64
	FPSRel     float64
}

// Fig14 runs the KFusion pipeline in the three SLAMBench configurations
// and reports each metric relative to the standard configuration.
func Fig14(ctx context.Context, w io.Writer, opt Options) ([]Fig14Row, error) {
	header(w, "Fig 14: SLAMBench metrics relative to standard configuration")
	scale := 1
	if opt.Scale == ScalePaper {
		scale = 4
	}
	type snap struct {
		gs  stats.GPUStats
		sys stats.SystemStats
		fps float64
	}
	run := func(cfg slam.Config) (*snap, error) {
		p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: opt.gpuConfig()})
		if err != nil {
			return nil, err
		}
		defer p.Close()
		c, err := cl.NewContext(p, opt.CompilerVersion)
		if err != nil {
			return nil, err
		}
		if _, err := slam.Run(ctx, c, cfg); err != nil {
			return nil, err
		}
		gs, sys := p.GPU.Stats()
		mali := costmodel.MaliG71()
		return &snap{gs: gs, sys: sys, fps: 1 / mali.Estimate(&gs)}, nil
	}
	std, err := run(slam.Standard(scale))
	if err != nil {
		return nil, err
	}
	fast, err := run(slam.Fast3(scale))
	if err != nil {
		return nil, err
	}
	expr, err := run(slam.Express(scale))
	if err != nil {
		return nil, err
	}

	rel := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	row := func(name string, s *snap) Fig14Row {
		return Fig14Row{
			Config:     name,
			ArithInstr: rel(s.gs.ArithInstr, std.gs.ArithInstr),
			CFInstr:    rel(s.gs.CFInstr, std.gs.CFInstr),
			ConstReads: rel(s.gs.ConstRead, std.gs.ConstRead),
			CtrlRegs:   rel(s.sys.CtrlRegReads+s.sys.CtrlRegWrites, std.sys.CtrlRegReads+std.sys.CtrlRegWrites),
			GRFAcc:     rel(s.gs.GRFRead+s.gs.GRFWrite, std.gs.GRFRead+std.gs.GRFWrite),
			GlobalLS:   rel(s.gs.GlobalLS, std.gs.GlobalLS),
			Interrupts: rel(s.sys.IRQsAsserted, std.sys.IRQsAsserted),
			Kernels:    rel(s.sys.KernelLaunch, std.sys.KernelLaunch),
			LocalLS:    rel(s.gs.LocalLS, std.gs.LocalLS),
			NOPInstr:   rel(s.gs.NopInstr, std.gs.NopInstr),
			NumClauses: rel(s.gs.ClausesExec, std.gs.ClausesExec),
			NumWG:      rel(s.gs.Workgroups, std.gs.Workgroups),
			PagesAcc:   rel(s.sys.PagesAccessed, std.sys.PagesAccessed),
			ROMReads:   rel(s.gs.ROMRead, std.gs.ROMRead),
			TempAcc:    rel(s.gs.TempAcc, std.gs.TempAcc),
			AvgClause:  s.gs.AvgClauseSize() / std.gs.AvgClauseSize(),
			FPSRel:     s.fps / std.fps,
		}
	}
	rows := []Fig14Row{row("fast3", fast), row("express", expr)}

	tw := table(w)
	fmt.Fprintln(tw, "metric\tfast3\texpress")
	print2 := func(name string, a, b float64) { fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", name, a, b) }
	print2("Arithmetic Instr.", rows[0].ArithInstr, rows[1].ArithInstr)
	print2("Avg. Clause Size", rows[0].AvgClause, rows[1].AvgClause)
	print2("CF Instr.", rows[0].CFInstr, rows[1].CFInstr)
	print2("Constant Reads", rows[0].ConstReads, rows[1].ConstReads)
	print2("Control Regs.", rows[0].CtrlRegs, rows[1].CtrlRegs)
	print2("GRF Acc.", rows[0].GRFAcc, rows[1].GRFAcc)
	print2("Global LS Instr.", rows[0].GlobalLS, rows[1].GlobalLS)
	print2("Interrupts", rows[0].Interrupts, rows[1].Interrupts)
	print2("Kernels", rows[0].Kernels, rows[1].Kernels)
	print2("Local LS Instr.", rows[0].LocalLS, rows[1].LocalLS)
	print2("NOP Instr.", rows[0].NOPInstr, rows[1].NOPInstr)
	print2("Num. Clauses", rows[0].NumClauses, rows[1].NumClauses)
	print2("Num. Workgroups", rows[0].NumWG, rows[1].NumWG)
	print2("Pages Acc.", rows[0].PagesAcc, rows[1].PagesAcc)
	print2("ROM Reads", rows[0].ROMReads, rows[1].ROMReads)
	print2("Temp. Reg. Acc.", rows[0].TempAcc, rows[1].TempAcc)
	print2("Est. FPS (rel.)", rows[0].FPSRel, rows[1].FPSRel)
	return rows, tw.Flush()
}

// Fig15Row is one SGEMM variant's normalised metrics and model runtimes.
type Fig15Row struct {
	Variant    string
	ID         int
	ArithInstr float64
	CFInstr    float64
	ConstRead  float64
	GlobalLS   float64
	GRF        float64
	LocalLS    float64
	NOPInstr   float64
	NumClauses float64
	ROM        float64
	TempAcc    float64
	MaliTime   float64 // relative to the slowest variant on Mali
	NVIDIATime float64 // relative to the slowest variant on NVIDIA model
}

// Fig15 runs the six SGEMM variants and reports statistics normalised to
// variant 6 plus the analytical Mali and NVIDIA runtime estimates.
func Fig15(ctx context.Context, w io.Writer, opt Options) ([]Fig15Row, error) {
	header(w, "Fig 15: SGEMM optimisation ladder (stats normalised to variant 6)")
	dim := 64
	switch opt.Scale {
	case ScaleDefault:
		dim = 128
	case ScalePaper:
		dim = 1024
	}
	a, b := workloads.SgemmInputs(dim, dim, dim)
	want := workloads.SgemmNative(a, b, dim, dim, dim)

	type snap struct {
		gs   stats.GPUStats
		mali float64
		nv   float64
	}
	shots := map[int]*snap{}
	variants := workloads.SgemmVariants()
	for _, v := range variants {
		p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: opt.gpuConfig()})
		if err != nil {
			return nil, err
		}
		c, err := cl.NewContext(p, opt.CompilerVersion)
		if err != nil {
			p.Close()
			return nil, err
		}
		got, err := workloads.RunSgemmVariant(ctx, c, v, a, b, dim, dim, dim)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("variant %s: %w", v.Name, err)
		}
		for i := range got {
			d := float64(got[i] - want[i])
			if d > 1e-2 || d < -1e-2 {
				p.Close()
				return nil, fmt.Errorf("variant %s verification failed at %d", v.Name, i)
			}
		}
		gs, _ := p.GPU.Stats()
		p.Close()
		mali := costmodel.MaliG71()
		desk := costmodel.K20m()
		shots[v.ID] = &snap{
			gs:   gs,
			mali: mali.Estimate(&gs),
			nv:   desk.Estimate(&gs, v.Profile, 1),
		}
	}

	base := shots[6].gs
	var maliMax, nvMax float64
	var localMax uint64
	for _, s := range shots {
		if s.mali > maliMax {
			maliMax = s.mali
		}
		if s.nv > nvMax {
			nvMax = s.nv
		}
		if s.gs.LocalLS > localMax {
			localMax = s.gs.LocalLS
		}
	}
	rel := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	// Variant 6 avoids local memory entirely in this reproduction, so the
	// local-LS column normalises against the heaviest local user instead.
	localBase := base.LocalLS
	if localBase == 0 {
		localBase = localMax
	}
	var rows []Fig15Row
	for _, v := range variants {
		s := shots[v.ID]
		rows = append(rows, Fig15Row{
			Variant:    v.Name,
			ID:         v.ID,
			ArithInstr: rel(s.gs.ArithInstr, base.ArithInstr),
			CFInstr:    rel(s.gs.CFInstr, base.CFInstr),
			ConstRead:  rel(s.gs.ConstRead, base.ConstRead),
			GlobalLS:   rel(s.gs.GlobalLS, base.GlobalLS),
			GRF:        rel(s.gs.GRFRead+s.gs.GRFWrite, base.GRFRead+base.GRFWrite),
			LocalLS:    rel(s.gs.LocalLS, localBase),
			NOPInstr:   rel(s.gs.NopInstr, base.NopInstr),
			NumClauses: rel(s.gs.ClausesExec, base.ClausesExec),
			ROM:        rel(s.gs.ROMRead, base.ROMRead),
			TempAcc:    rel(s.gs.TempAcc, base.TempAcc),
			MaliTime:   s.mali / maliMax,
			NVIDIATime: s.nv / nvMax,
		})
	}
	tw := table(w)
	fmt.Fprintln(tw, "variant\tarith\tCF\tconst\tglobal LS\tGRF\tlocal LS\tNOP\tclauses\tROM\ttemp\tMali time\tNVIDIA time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d:%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.ID, r.Variant, r.ArithInstr, r.CFInstr, r.ConstRead, r.GlobalLS, r.GRF,
			r.LocalLS, r.NOPInstr, r.NumClauses, r.ROM, r.TempAcc, r.MaliTime, r.NVIDIATime)
	}
	return rows, tw.Flush()
}
