package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

var small = Options{Scale: ScaleSmall}

func TestFig1CompilerVersionsDiffer(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d versions, want 5", len(rows))
	}
	// 5.6 is the unit baseline.
	if rows[0].ArithCycles != 1 || rows[0].Registers != 1 {
		t.Errorf("baseline row not normalised: %+v", rows[0])
	}
	// Substantial differences across versions (paper: up to 47%).
	var spread float64
	for _, r := range rows {
		if d := absf(r.ArithCycles - 1); d > spread {
			spread = d
		}
	}
	if spread < 0.1 {
		t.Errorf("arith-cycle spread %.2f too small; versions indistinguishable", spread)
	}
	// 6.1 == 6.2 as in the paper.
	if rows[3] != (Fig1Row{Version: "6.1", ArithCycles: rows[4].ArithCycles,
		ArithInstrs: rows[4].ArithInstrs, LSCycles: rows[4].LSCycles,
		LSInstrs: rows[4].LSInstrs, Registers: rows[4].Registers, Absolute: rows[4].Absolute}) {
		t.Errorf("6.1 and 6.2 should produce identical code:\n%+v\n%+v", rows[3], rows[4])
	}
}

func TestFig6DivergenceCFG(t *testing.T) {
	var buf bytes.Buffer
	rendered, err := Fig6(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered, "dvg.") {
		t.Error("BFS CFG shows no divergence annotations")
	}
	if !strings.Contains(rendered, "->") {
		t.Error("CFG has no edges")
	}
}

func TestFig7SlowdownShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.GPUOnly <= 0 || r.FullSystem <= 0 {
			t.Errorf("%s: non-positive slowdown %+v", r.Name, r)
		}
	}
}

func TestFig9BaselineScalesWorse(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig9(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// The interpreted baseline must pay substantially more CPU time than
	// the DBT stack at the largest size (the Fig 9 gap).
	if float64(last.M2SCPUTime) < 1.5*float64(last.OursCPUTime) {
		t.Errorf("baseline CPU time %v not clearly above ours %v", last.M2SCPUTime, last.OursCPUTime)
	}
	// Both grow with input size.
	if rows[len(rows)-1].OursCPUTime <= rows[0].OursCPUTime {
		t.Error("driver time should grow with input size")
	}
}

func TestTable3SystemStatsShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	bfs, sobel, stencil := byName["BFS"], byName["SobelFilter"], byName["Stencil"]
	// BFS is control-heavy: many jobs, far more register traffic and
	// interrupts than single-kernel benchmarks.
	if bfs.Sys.ComputeJobs < 5 || bfs.Sys.ComputeJobs <= sobel.Sys.ComputeJobs {
		t.Errorf("BFS jobs = %d, sobel = %d; BFS should dominate", bfs.Sys.ComputeJobs, sobel.Sys.ComputeJobs)
	}
	if bfs.Sys.CtrlRegWrites <= sobel.Sys.CtrlRegWrites {
		t.Error("BFS should generate more control-register writes than SobelFilter")
	}
	// Stencil submits one job per iteration.
	if stencil.Sys.ComputeJobs < 10 {
		t.Errorf("stencil jobs = %d, want its iteration count", stencil.Sys.ComputeJobs)
	}
	// One interrupt per submission (plus none spurious).
	if sobel.Sys.IRQsAsserted == 0 {
		t.Error("SobelFilter should raise at least one interrupt")
	}
}

func TestTables2And4Print(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SobelFilter") {
		t.Error("Table II missing benchmarks")
	}
	buf.Reset()
	if err := Table4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GPGPU-Sim", "Multi2Sim", "This reproduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
}

func TestFig14RelativeMetrics(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig14(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	fast, expr := rows[0], rows[1]
	if fast.ArithInstr >= 1 || expr.ArithInstr >= fast.ArithInstr {
		t.Errorf("instruction ratios should shrink: fast=%.2f express=%.2f", fast.ArithInstr, expr.ArithInstr)
	}
	if fast.LocalLS <= fast.ArithInstr {
		t.Errorf("local-LS ratio (%.2f) should exceed the instruction ratio (%.2f)", fast.LocalLS, fast.ArithInstr)
	}
	if !(expr.FPSRel > fast.FPSRel && fast.FPSRel > 1) {
		t.Errorf("FPS should improve: fast=%.2f express=%.2f", fast.FPSRel, expr.FPSRel)
	}
}

func TestFig15Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig15(context.Background(), &buf, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d variants", len(rows))
	}
	byID := map[int]Fig15Row{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	// Mali winner is variant 4; desktop winner is variant 6; no
	// correlation between the two platforms.
	for id := 1; id <= 6; id++ {
		if id != 4 && byID[4].MaliTime >= byID[id].MaliTime {
			t.Errorf("variant 4 should win on Mali (v4=%.2f v%d=%.2f)", byID[4].MaliTime, id, byID[id].MaliTime)
		}
		if id != 6 && byID[6].NVIDIATime >= byID[id].NVIDIATime {
			t.Errorf("variant 6 should win on NVIDIA model (v6=%.2f v%d=%.2f)", byID[6].NVIDIATime, id, byID[id].NVIDIATime)
		}
	}
	if byID[1].NVIDIATime != 1 {
		t.Errorf("variant 1 should be the NVIDIA-model slowest (=1.0), got %.2f", byID[1].NVIDIATime)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
