// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each Fig*/Table* function runs the relevant workloads
// on the simulator, prints the same rows/series the paper reports, and
// returns the structured data so benchmarks and tests can assert shape
// properties. The per-experiment index and expected shape properties
// live in EXPERIMENTS.md; the design-decision (ablation) index is
// DESIGN.md §5. The public entry point is mobilesim.RunExperiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/gpu"
	"mobilesim/internal/platform"
	"mobilesim/internal/stats"
	"mobilesim/internal/workloads"
)

// ScaleKind selects workload input sizes.
type ScaleKind string

// Scale presets.
const (
	ScaleSmall   ScaleKind = "small"   // seconds-fast, CI-sized
	ScaleDefault ScaleKind = "default" // minutes, bench-sized
	ScalePaper   ScaleKind = "paper"   // Table II sizes (can take hours)
)

// Options configures a run. Cancellation is not an option: every
// experiment entry point takes the caller's context.Context explicitly
// (between workload runs it cancels immediately, inside a run at kernel
// clause-boundary granularity), so it cannot be forgotten and silently
// replaced with context.Background — exactly the bug the ctxflow lint
// (DESIGN.md §10) guards against.
type Options struct {
	Scale ScaleKind
	// HostThreads overrides the GPU worker count (0 = default 8).
	HostThreads int
	// CompilerVersion overrides the JIT version (empty = default).
	CompilerVersion string
}

func (o Options) scaleOf(s *workloads.Spec) int {
	switch o.Scale {
	case ScalePaper:
		return s.PaperScale
	case ScaleDefault:
		return s.DefaultScale
	default:
		return s.SmallScale
	}
}

func (o Options) gpuConfig() gpu.Config {
	cfg := gpu.DefaultConfig()
	if o.HostThreads > 0 {
		cfg.HostThreads = o.HostThreads
	}
	return cfg
}

// runOutcome couples a workload result with the stats snapshots.
type runOutcome struct {
	res     *workloads.Result
	gs      stats.GPUStats
	sys     stats.SystemStats
	cpuTime time.Duration // driver-side guest simulation time
	setup   time.Duration // host-native input generation time
}

// runOne executes a named workload on a fresh platform.
func runOne(ctx context.Context, spec *workloads.Spec, opt Options, mutate func(*platform.Platform)) (*runOutcome, error) {
	p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: opt.gpuConfig()})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if mutate != nil {
		mutate(p)
	}
	c, err := cl.NewContext(p, opt.CompilerVersion)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	inst := spec.Make(opt.scaleOf(spec))
	setup := time.Since(t0)
	res, err := inst.Run(ctx, c, spec.Name, true)
	if err != nil {
		return nil, err
	}
	if !res.Verified {
		return nil, fmt.Errorf("%s failed verification: %w", spec.Name, res.VerifyErr)
	}
	gs, sys := p.GPU.Stats()
	return &runOutcome{res: res, gs: gs, sys: sys, cpuTime: c.Drv.CPUTime, setup: setup}, nil
}

// table streams aligned columns.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
