package experiments

import (
	"context"
	"fmt"
	"io"

	"mobilesim/internal/stats"
	"mobilesim/internal/workloads"
)

// Table2 prints the benchmark registry: suite, paper input and the scaled
// inputs this reproduction uses.
func Table2(w io.Writer) error {
	header(w, "Table II: benchmarks and data set sizes")
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tsuite\tpaper input\tsmall/default/paper scale")
	for _, s := range workloads.All() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d / %d / %d\n",
			s.Name, s.Suite, s.PaperInput, s.SmallScale, s.DefaultScale, s.PaperScale)
	}
	return tw.Flush()
}

// table3Benchmarks are the four rows of Table III.
var table3Benchmarks = []string{"BFS", "BinomialOption", "SobelFilter", "Stencil"}

// Table3Row is one benchmark's system-level statistics.
type Table3Row struct {
	Name string
	Sys  stats.SystemStats
}

// Table3 reports the CPU-GPU system interaction statistics.
func Table3(ctx context.Context, w io.Writer, opt Options) ([]Table3Row, error) {
	header(w, "Table III: system statistics (CPU-GPU interaction)")
	var rows []Table3Row
	for _, name := range table3Benchmarks {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out, err := runOne(ctx, spec, opt, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Name: name, Sys: out.sys})
	}
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tpages acc.\tctrl reg reads\tctrl reg writes\tinterrupts\tcompute jobs\ttlb hits\ttlb walks")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.Sys.PagesAccessed, r.Sys.CtrlRegReads, r.Sys.CtrlRegWrites,
			r.Sys.IRQsAsserted, r.Sys.ComputeJobs, r.Sys.TLBHits, r.Sys.TLBWalks)
	}
	return rows, tw.Flush()
}

// simulatorFeature is one row of the Table IV comparison.
type simulatorFeature struct {
	Name, FullSystem, GuestCPU, GuestGPU, ISA, Toolchain, Prog, Perf, Model, MaxErr string
}

// table4Data reproduces the paper's feature comparison, with this
// reproduction appended in place of "Our Simulator".
var table4Data = []simulatorFeature{
	{"Barra", "GPU only", "N/A", "NVIDIA Tesla", "Approx. Tesla ISA", "Emulated", "CUDA", "Instruction-acc.", "Execution-driven", "<= 81.6%"},
	{"GPGPU-Sim", "GPU only", "N/A", "NVIDIA-like GT200", "PTX / SASS", "Custom", "CUDA", "Cycle-acc.", "Execution-driven", "<= 50.0%"},
	{"gem5-GPU", "Yes", "x86", "NVIDIA GTX580", "PTX / SASS", "Custom", "CUDA", "Cycle-acc.", "Execution-driven", "<= 22.0%"},
	{"Multi2Sim", "Yes", "x86/Arm/MIPS", "AMD Everg./S.Isl., NVIDIA Fermi", "AMD GCN1 SASS", "Custom", "OpenCL/CUDA", "Cycle-acc.", "Execution-driven", "<= 30.0%"},
	{"Multi2Sim Kepler", "Yes", "x86/Arm/MIPS", "NVIDIA Kepler", "SASS", "Custom", "CUDA", "Cycle-acc.", "Execution-driven", "<= 200%"},
	{"ATTILA", "GPU only", "N/A", "ATTILA", "ARB", "Custom", "OpenGL", "Cycle-acc.", "Execution-driven", "N/A"},
	{"GPUOcelot", "GPU only", "N/A", "NVIDIA / AMD Radeon", "PTX", "Custom", "CUDA", "Instruction-acc.", "Trace-based", "not evaluated"},
	{"HSAemu", "Yes", "Retargetable/Arm-v7A", "Generic", "HSAIL", "Custom", "OpenCL", "Cycle-acc.", "Execution-driven", "N/A"},
	{"GPUTejas", "GPU only", "N/A", "NVIDIA Tesla", "PTX u-ops", "Custom", "CUDA", "Cycle-acc.", "Trace-based", "<= 29.7%"},
	{"MacSim", "Yes", "x86", "NVIDIA G80/GT200/Fermi", "PTX u-ops", "Custom", "CUDA", "Cycle-acc.", "Trace-based", "not evaluated"},
	{"TEAPOT", "Yes", "Generic", "Generic mobile GPU", "Emulated", "Custom", "OpenGL", "Cycle-acc.", "Trace-based", "N/A"},
	{"QEMU/MARSSx86/PTLsim", "Yes", "x86", "NVIDIA Tesla-like", "Generic", "Custom", "OpenGL", "Cycle-acc.", "Execution-driven", "not evaluated"},
	{"GemDroid", "Yes", "x86/Arm-v7A", "ATTILA", "ARB", "Custom", "OpenGL", "Cycle-acc.", "Execution-driven", "N/A"},
	{"GCN3 Simulator", "Yes", "x86", "AMD Pro A12-8800B APU", "GCN3", "Vendor", "ROCm", "Cycle-acc.", "Execution-driven", "~42%"},
	{"This reproduction", "Yes", "VA64 (Arm-flavoured)", "Bifrost-style Mali-G71", "Native binary (clause ISA)", "Vendor-style JIT (clc)", "OpenCL (CLite)", "Instruction-acc.", "Execution-driven", "0.0%"},
}

// Table4 prints the simulator feature comparison.
func Table4(w io.Writer) error {
	header(w, "Table IV: GPU simulator feature comparison")
	tw := table(w)
	fmt.Fprintln(tw, "simulator\tfull system\tguest CPU\tguest GPU\tGPU ISA\ttoolchain\tprog. model\tperf model\tsimulation\tmax rel. error")
	for _, r := range table4Data {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, r.FullSystem, r.GuestCPU, r.GuestGPU, r.ISA, r.Toolchain,
			r.Prog, r.Perf, r.Model, r.MaxErr)
	}
	return tw.Flush()
}
