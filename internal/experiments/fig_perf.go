package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/cpu"
	"mobilesim/internal/m2s"
	"mobilesim/internal/platform"
	"mobilesim/internal/workloads"
)

// fig7Benchmarks are the nine AMD APP kernels of Fig 7.
var fig7Benchmarks = []string{
	"BinarySearch", "BinomialOption", "BitonicSort", "DCT", "DwtHaar1D",
	"MatrixTranspose", "Reduction", "SobelFilter", "URNG",
}

// Fig7Row reports simulation slowdown for one benchmark.
type Fig7Row struct {
	Name string
	// GPUOnly is simulated-kernel time over native-kernel time.
	GPUOnly float64
	// FullSystem is whole-run simulated time over whole-run native time
	// (native includes input generation, the benchmark's host phase).
	FullSystem float64
}

// Fig7 measures simulation slowdown relative to native execution, GPU-only
// and full-system, as Fig 7 does against the HiKey960.
func Fig7(ctx context.Context, w io.Writer, opt Options) ([]Fig7Row, error) {
	header(w, "Fig 7: simulation slowdown vs native execution")
	var rows []Fig7Row
	for _, name := range fig7Benchmarks {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out, err := runOne(ctx, spec, opt, nil)
		if err != nil {
			return nil, err
		}
		simGPU := out.res.SimDuration - out.cpuTime
		if simGPU <= 0 {
			simGPU = out.res.SimDuration
		}
		nativeKernel := out.res.NativeDuration
		nativeFull := out.res.NativeDuration + out.setup
		rows = append(rows, Fig7Row{
			Name:       name,
			GPUOnly:    ratioDur(simGPU, nativeKernel),
			FullSystem: ratioDur(out.res.SimDuration, nativeFull),
		})
	}
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tGPU-only slowdown\tfull-system slowdown")
	var gSum, fSum float64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0fx\t%.0fx\n", r.Name, r.GPUOnly, r.FullSystem)
		gSum += r.GPUOnly
		fSum += r.FullSystem
	}
	fmt.Fprintf(tw, "average\t%.0fx\t%.0fx\n", gSum/float64(len(rows)), fSum/float64(len(rows)))
	return rows, tw.Flush()
}

func ratioDur(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// fig8Benchmarks are the 13 kernels of Fig 8.
var fig8Benchmarks = []string{
	"BinarySearch", "BinomialOption", "BitonicSort", "DCT", "DwtHaar1D",
	"FloydWarshall", "MatrixTranspose", "RecursiveGaussian", "Reduction",
	"ScanLargeArrays", "SobelFilter", "SGEMM", "Stencil",
}

// Fig8Row reports our simulator's speed relative to the baseline.
type Fig8Row struct {
	Name string
	// Speedup is baseline time / our time (no instrumentation cost
	// difference: instrumentation is always-on counters).
	Speedup float64
	// SpeedupInstrumented additionally collects the divergence CFG, the
	// costly optional instrumentation.
	SpeedupInstrumented float64
}

// Fig8 compares full-system simulation speed against the Multi2Sim-style
// baseline mode (per-instruction CPU dispatch, flat GPU address space),
// with and without CFG instrumentation.
func Fig8(ctx context.Context, w io.Writer, opt Options) ([]Fig8Row, error) {
	header(w, "Fig 8: speed relative to Multi2Sim-style functional baseline (=1.0)")
	var rows []Fig8Row
	for _, name := range fig8Benchmarks {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		// Baseline mode: interpreter CPU (per-instruction dispatch).
		base, err := runOne(ctx, spec, opt, func(p *platform.Platform) {
			for _, c := range p.CPUs {
				c.SetEngine(cpu.EngineInterp)
			}
		})
		if err != nil {
			return nil, err
		}
		ours, err := runOne(ctx, spec, opt, nil)
		if err != nil {
			return nil, err
		}
		instrOpt := opt
		oursInstr, err := runOneCFG(ctx, spec, instrOpt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{
			Name:                name,
			Speedup:             ratioDur(base.res.SimDuration, ours.res.SimDuration),
			SpeedupInstrumented: ratioDur(base.res.SimDuration, oursInstr.res.SimDuration),
		})
	}
	tw := table(w)
	fmt.Fprintln(tw, "benchmark\tw/o instrum.\twith instrum.")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", r.Name, r.Speedup, r.SpeedupInstrumented)
	}
	return rows, tw.Flush()
}

func runOneCFG(ctx context.Context, spec *workloads.Spec, opt Options) (*runOutcome, error) {
	cfg := opt.gpuConfig()
	cfg.CollectCFG = true
	p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: cfg})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	c, err := cl.NewContext(p, opt.CompilerVersion)
	if err != nil {
		return nil, err
	}
	inst := spec.Make(opt.scaleOf(spec))
	res, err := inst.Run(ctx, c, spec.Name, true)
	if err != nil {
		return nil, err
	}
	gs, sys := p.GPU.Stats()
	return &runOutcome{res: res, gs: gs, sys: sys, cpuTime: c.Drv.CPUTime}, nil
}

// Fig9Row is one input size of the driver-runtime scaling sweep.
type Fig9Row struct {
	Dim         int
	OursCPUTime time.Duration
	M2SCPUTime  time.Duration
}

// Fig9 sweeps SobelFilter input sizes and reports the CPU-side software-
// stack simulation time on our DBT-based stack vs the Multi2Sim-style
// interpreted runtime.
func Fig9(ctx context.Context, w io.Writer, opt Options) ([]Fig9Row, error) {
	header(w, "Fig 9: CPU-side driver runtime vs input size (SobelFilter)")
	dims := []int{256, 384, 512, 640, 768}
	if opt.Scale == ScalePaper {
		dims = []int{256, 512, 768, 1024, 1280, 1536}
	} else if opt.Scale == ScaleSmall {
		dims = []int{64, 128, 256}
	}
	var rows []Fig9Row
	for _, dim := range dims {
		ours, err := sobelDriverTime(ctx, dim, opt)
		if err != nil {
			return nil, err
		}
		base, err := sobelM2STime(dim, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{Dim: dim, OursCPUTime: ours, M2SCPUTime: base})
	}
	tw := table(w)
	fmt.Fprintln(tw, "input\tour simulator\tMulti2Sim-style")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dx%d\t%v\t%v\n", r.Dim, r.Dim,
			r.OursCPUTime.Round(time.Millisecond), r.M2SCPUTime.Round(time.Millisecond))
	}
	return rows, tw.Flush()
}

func sobelDriverTime(ctx context.Context, dim int, opt Options) (time.Duration, error) {
	p, err := platform.New(platform.Config{RAMSize: 1 << 30, GPU: opt.gpuConfig()})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	c, err := cl.NewContext(p, opt.CompilerVersion)
	if err != nil {
		return 0, err
	}
	inst := workloads.MakeSobelInstance(dim)
	if _, err := inst.Sim(ctx, c); err != nil {
		return 0, err
	}
	return c.Drv.CPUTime, nil
}

// sobelM2STime runs SobelFilter through the intercepted-runtime baseline.
func sobelM2STime(dim int, opt Options) (time.Duration, error) {
	c, err := m2s.New(1<<30, opt.gpuConfig())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	w := (dim + 15) / 16 * 16
	h := w
	img := make([]byte, w*h)
	for i := range img {
		img[i] = byte(i * 131)
	}
	in, err := c.CreateBuffer(w * h)
	if err != nil {
		return 0, err
	}
	out, err := c.CreateBuffer(w * h)
	if err != nil {
		return 0, err
	}
	if err := c.WriteBuffer(in, img); err != nil {
		return 0, err
	}
	k, err := c.BuildKernel(sobelM2SSrc, "sobel")
	if err != nil {
		return 0, err
	}
	k.SetArgBuffer(0, in)
	k.SetArgBuffer(1, out)
	k.SetArgInt(2, int32(w))
	k.SetArgInt(3, int32(h))
	if err := c.Enqueue(k, [3]uint32{uint32(w), uint32(h), 1}, [3]uint32{16, 16, 1}); err != nil {
		return 0, err
	}
	if _, err := c.ReadBuffer(out, w*h); err != nil {
		return 0, err
	}
	return c.CPUTime, nil
}

const sobelM2SSrc = `
kernel void sobel(global uchar* in, global uchar* out, int w, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
        int i00 = in[(y - 1) * w + x - 1];
        int i10 = in[(y - 1) * w + x];
        int i20 = in[(y - 1) * w + x + 1];
        int i01 = in[y * w + x - 1];
        int i21 = in[y * w + x + 1];
        int i02 = in[(y + 1) * w + x - 1];
        int i12 = in[(y + 1) * w + x];
        int i22 = in[(y + 1) * w + x + 1];
        int gx = i00 + 2 * i01 + i02 - i20 - 2 * i21 - i22;
        int gy = i00 + 2 * i10 + i20 - i02 - 2 * i12 - i22;
        float m = sqrt((float)(gx * gx + gy * gy)) / 2.0f;
        out[y * w + x] = min((int)m, 255);
    } else if (x < w && y < h) {
        out[y * w + x] = 0;
    }
}
`

// Fig10Row is one host-thread count of the scaling sweep.
type Fig10Row struct {
	Threads             int
	SobelSpeedup        float64
	BinarySearchSpeedup float64
}

// Fig10 maps shader cores onto increasing host-thread counts and reports
// the speedup for the best case (SobelFilter) and worst case
// (BinarySearch).
func Fig10(ctx context.Context, w io.Writer, opt Options) ([]Fig10Row, error) {
	header(w, "Fig 10: host-thread scaling (speedup over 1 thread)")
	fmt.Fprintf(w, "(host machine exposes %d CPU core(s) to the simulator; the paper's\n"+
		" scaling host was a 32-core Xeon — speedups saturate at the core count)\n",
		runtime.GOMAXPROCS(0))
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	if opt.Scale == ScaleSmall {
		threads = []int{1, 2, 4, 8}
	}
	timeFor := func(name string, ht int) (time.Duration, error) {
		spec, err := workloads.ByName(name)
		if err != nil {
			return 0, err
		}
		o := opt
		o.HostThreads = ht
		out, err := runOne(ctx, spec, o, nil)
		if err != nil {
			return 0, err
		}
		return out.res.SimDuration, nil
	}
	var rows []Fig10Row
	var sobelBase, bsBase time.Duration
	for i, ht := range threads {
		st, err := timeFor("SobelFilter", ht)
		if err != nil {
			return nil, err
		}
		bt, err := timeFor("BinarySearch", ht)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			sobelBase, bsBase = st, bt
		}
		rows = append(rows, Fig10Row{
			Threads:             ht,
			SobelSpeedup:        ratioDur(sobelBase, st),
			BinarySearchSpeedup: ratioDur(bsBase, bt),
		})
	}
	tw := table(w)
	fmt.Fprintln(tw, "host threads\tSobelFilter\tBinarySearch")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\n", r.Threads, r.SobelSpeedup, r.BinarySearchSpeedup)
	}
	return rows, tw.Flush()
}
