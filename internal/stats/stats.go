// Package stats holds the instrumentation data model from §IV of the
// paper: program-execution statistics (instruction mixes, clause metrics,
// data-access breakdowns), system-level statistics (CPU↔GPU transactions),
// and control-flow graphs with divergence annotations. The GPU simulator
// produces these; the experiment harness renders them into the paper's
// tables and figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// MaxClauseSlots is the architectural clause limit: 8 tuples of 2
// instruction slots.
const MaxClauseSlots = 16

// GPUStats aggregates per-job program-execution counters. Counts are per
// executed thread (an instruction executed by a warp with 3 active lanes
// adds 3), matching per-thread hardware counters. Collected per parallel
// host thread without synchronisation and merged at job completion, as the
// paper describes.
type GPUStats struct {
	// Instruction mix (Fig 11). NopInstr counts architecturally empty
	// slots issued inside executed clauses.
	ArithInstr uint64
	LSInstr    uint64
	CFInstr    uint64
	NopInstr   uint64

	// LS split (Fig 14/15 report global and local separately).
	GlobalLS uint64
	LocalLS  uint64

	// Data-access breakdown (Fig 12).
	TempAcc    uint64 // clause-temporary register reads+writes
	GRFRead    uint64 // global register file reads
	GRFWrite   uint64 // global register file writes
	ConstRead  uint64 // uniform/constant-port reads (kernel arguments)
	ROMRead    uint64 // embedded-constant (instruction-stream) reads
	MainMemAcc uint64 // global memory data accesses
	LocalAcc   uint64 // workgroup-local memory data accesses

	// Clause metrics (Fig 13). ClauseSizeHist[n] counts executed clauses
	// with n instruction slots (dynamic frequency x decode-time size).
	ClausesExec    uint64
	ClauseSizeHist [MaxClauseSlots + 1]uint64

	// Shape of the dispatch.
	Threads    uint64
	Warps      uint64
	Workgroups uint64

	// Divergence: warp-level conditional branches executed and how many
	// of them split the warp.
	Branches          uint64
	DivergentBranches uint64

	// RegistersUsed is the compiler-reported GRF footprint of the shader
	// (max across jobs when merged).
	RegistersUsed uint64
}

// Merge accumulates o into s.
func (s *GPUStats) Merge(o *GPUStats) {
	s.ArithInstr += o.ArithInstr
	s.LSInstr += o.LSInstr
	s.CFInstr += o.CFInstr
	s.NopInstr += o.NopInstr
	s.GlobalLS += o.GlobalLS
	s.LocalLS += o.LocalLS
	s.TempAcc += o.TempAcc
	s.GRFRead += o.GRFRead
	s.GRFWrite += o.GRFWrite
	s.ConstRead += o.ConstRead
	s.ROMRead += o.ROMRead
	s.MainMemAcc += o.MainMemAcc
	s.LocalAcc += o.LocalAcc
	s.ClausesExec += o.ClausesExec
	for i := range s.ClauseSizeHist {
		s.ClauseSizeHist[i] += o.ClauseSizeHist[i]
	}
	s.Threads += o.Threads
	s.Warps += o.Warps
	s.Workgroups += o.Workgroups
	s.Branches += o.Branches
	s.DivergentBranches += o.DivergentBranches
	if o.RegistersUsed > s.RegistersUsed {
		s.RegistersUsed = o.RegistersUsed
	}
}

// Sub returns the counter-wise difference s - o, for per-run deltas
// diffed around a run (o must be an earlier snapshot of the same
// accumulator). RegistersUsed is a high-water mark, not a counter, so the
// later snapshot's value is kept as-is.
func (s *GPUStats) Sub(o *GPUStats) GPUStats {
	d := *s
	d.ArithInstr -= o.ArithInstr
	d.LSInstr -= o.LSInstr
	d.CFInstr -= o.CFInstr
	d.NopInstr -= o.NopInstr
	d.GlobalLS -= o.GlobalLS
	d.LocalLS -= o.LocalLS
	d.TempAcc -= o.TempAcc
	d.GRFRead -= o.GRFRead
	d.GRFWrite -= o.GRFWrite
	d.ConstRead -= o.ConstRead
	d.ROMRead -= o.ROMRead
	d.MainMemAcc -= o.MainMemAcc
	d.LocalAcc -= o.LocalAcc
	d.ClausesExec -= o.ClausesExec
	for i := range d.ClauseSizeHist {
		d.ClauseSizeHist[i] -= o.ClauseSizeHist[i]
	}
	d.Threads -= o.Threads
	d.Warps -= o.Warps
	d.Workgroups -= o.Workgroups
	d.Branches -= o.Branches
	d.DivergentBranches -= o.DivergentBranches
	return d
}

// TotalInstr is the total of all executed instruction slots.
func (s *GPUStats) TotalInstr() uint64 {
	return s.ArithInstr + s.LSInstr + s.CFInstr + s.NopInstr
}

// MixFractions returns the Fig 11 fractions (arith, LS, NOP, CF) of the
// total instruction count. All zeros when nothing executed.
func (s *GPUStats) MixFractions() (arith, ls, nop, cf float64) {
	t := float64(s.TotalInstr())
	if t == 0 {
		return
	}
	return float64(s.ArithInstr) / t, float64(s.LSInstr) / t,
		float64(s.NopInstr) / t, float64(s.CFInstr) / t
}

// DataAccessFractions returns the Fig 12 shares in the paper's order:
// temp, GRF read, GRF write, constant read, ROM, main memory.
func (s *GPUStats) DataAccessFractions() [6]float64 {
	total := float64(s.TempAcc + s.GRFRead + s.GRFWrite + s.ConstRead + s.ROMRead + s.MainMemAcc)
	if total == 0 {
		return [6]float64{}
	}
	return [6]float64{
		float64(s.TempAcc) / total,
		float64(s.GRFRead) / total,
		float64(s.GRFWrite) / total,
		float64(s.ConstRead) / total,
		float64(s.ROMRead) / total,
		float64(s.MainMemAcc) / total,
	}
}

// AvgClauseSize is the mean executed clause size in instruction slots.
func (s *GPUStats) AvgClauseSize() float64 {
	var slots, n uint64
	for sz, c := range s.ClauseSizeHist {
		slots += uint64(sz) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(slots) / float64(n)
}

// ClauseSizeQuartiles returns (min, q1, median, q3, max) of the executed
// clause-size distribution, the Fig 13 box-plot statistics.
func (s *GPUStats) ClauseSizeQuartiles() (min, q1, med, q3, max float64) {
	var n uint64
	for _, c := range s.ClauseSizeHist {
		n += c
	}
	if n == 0 {
		return
	}
	at := func(k uint64) float64 {
		var seen uint64
		for sz, c := range s.ClauseSizeHist {
			seen += c
			if seen > k {
				return float64(sz)
			}
		}
		return float64(MaxClauseSlots)
	}
	for sz, c := range s.ClauseSizeHist {
		if c > 0 {
			min = float64(sz)
			break
		}
	}
	for sz := MaxClauseSlots; sz >= 0; sz-- {
		if s.ClauseSizeHist[sz] > 0 {
			max = float64(sz)
			break
		}
	}
	return min, at(n / 4), at(n / 2), at(3 * n / 4), max
}

// SystemStats captures the CPU↔GPU interaction counters of Table III.
type SystemStats struct {
	PagesAccessed uint64 // distinct pages translated by the GPU MMU
	CtrlRegReads  uint64 // CPU reads of GPU control registers
	CtrlRegWrites uint64 // CPU writes of GPU control registers
	IRQsAsserted  uint64 // GPU interrupt edges
	ComputeJobs   uint64 // jobs executed by the Job Manager
	KernelLaunch  uint64 // runtime-level kernel enqueues

	// GPU MMU traffic, summed over every translation agent the device
	// ran (the Job Manager's chain walker plus one walker per virtual
	// core). For data-race-free kernels these are deterministic at a
	// fixed HostThreads count (workgroups are partitioned statically
	// across virtual cores); kernels with benign guest races — BFS's
	// frontier flags — can shift the hit/walk split between runs.
	TLBHits  uint64 // accesses served from a TLB entry
	TLBWalks uint64 // full table walks (TLB misses)
}

// Merge accumulates o into s.
func (s *SystemStats) Merge(o *SystemStats) {
	s.PagesAccessed += o.PagesAccessed
	s.CtrlRegReads += o.CtrlRegReads
	s.CtrlRegWrites += o.CtrlRegWrites
	s.IRQsAsserted += o.IRQsAsserted
	s.ComputeJobs += o.ComputeJobs
	s.KernelLaunch += o.KernelLaunch
	s.TLBHits += o.TLBHits
	s.TLBWalks += o.TLBWalks
}

// Sub returns the counter-wise difference s - o (see GPUStats.Sub).
// PagesAccessed is the size of a grow-only set between resets, so the
// difference counts pages first touched in the window.
func (s *SystemStats) Sub(o *SystemStats) SystemStats {
	return SystemStats{
		PagesAccessed: s.PagesAccessed - o.PagesAccessed,
		CtrlRegReads:  s.CtrlRegReads - o.CtrlRegReads,
		CtrlRegWrites: s.CtrlRegWrites - o.CtrlRegWrites,
		IRQsAsserted:  s.IRQsAsserted - o.IRQsAsserted,
		ComputeJobs:   s.ComputeJobs - o.ComputeJobs,
		KernelLaunch:  s.KernelLaunch - o.KernelLaunch,
		TLBHits:       s.TLBHits - o.TLBHits,
		TLBWalks:      s.TLBWalks - o.TLBWalks,
	}
}

// String renders a compact one-line summary for logs.
func (s *SystemStats) String() string {
	return fmt.Sprintf("pages=%d ctrlR=%d ctrlW=%d irq=%d jobs=%d tlbHit=%d tlbWalk=%d",
		s.PagesAccessed, s.CtrlRegReads, s.CtrlRegWrites, s.IRQsAsserted, s.ComputeJobs,
		s.TLBHits, s.TLBWalks)
}

// CFG is the control-flow graph built from clause-boundary PC tracking
// (Fig 6). Nodes are clause addresses within the shader binary; edges
// carry the number of threads that followed them.
type CFG struct {
	Blocks map[uint64]*CFGBlock
}

// CFGBlock is one clause-level basic block.
type CFGBlock struct {
	Addr       uint64
	ThreadsIn  uint64            // thread-entries into the block
	WarpsIn    uint64            // warp-entries into the block
	Diverged   uint64            // warp-entries that split at this block's branch
	Out        map[uint64]uint64 // successor addr -> thread count
	ExitCount  uint64            // threads terminating here (RET)
	Terminator string            // "br", "brc", "ret", "fallthrough"
}

// NewCFG creates an empty graph.
func NewCFG() *CFG { return &CFG{Blocks: make(map[uint64]*CFGBlock)} }

// Block returns (creating if needed) the block at addr.
func (g *CFG) Block(addr uint64) *CFGBlock {
	b := g.Blocks[addr]
	if b == nil {
		b = &CFGBlock{Addr: addr, Out: make(map[uint64]uint64)}
		g.Blocks[addr] = b
	}
	return b
}

// Merge accumulates another graph into g.
func (g *CFG) Merge(o *CFG) {
	for addr, ob := range o.Blocks {
		b := g.Block(addr)
		b.ThreadsIn += ob.ThreadsIn
		b.WarpsIn += ob.WarpsIn
		b.Diverged += ob.Diverged
		b.ExitCount += ob.ExitCount
		if ob.Terminator != "" {
			b.Terminator = ob.Terminator
		}
		for to, n := range ob.Out {
			b.Out[to] += n
		}
	}
}

// DivergencePct returns the percentage of warp entries that diverged at
// this block.
func (b *CFGBlock) DivergencePct() float64 {
	if b.WarpsIn == 0 {
		return 0
	}
	return 100 * float64(b.Diverged) / float64(b.WarpsIn)
}

// Render prints the graph in the style of Fig 6: one line per block with
// divergence percentage, then outgoing edges with the proportion of
// threads following each.
func (g *CFG) Render() string {
	addrs := make([]uint64, 0, len(g.Blocks))
	for a := range g.Blocks {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var sb strings.Builder
	for _, a := range addrs {
		b := g.Blocks[a]
		fmt.Fprintf(&sb, "%08x", a)
		if d := b.DivergencePct(); d > 0 {
			fmt.Fprintf(&sb, " (%.1f%% dvg.)", d)
		}
		sb.WriteString("\n")
		outTotal := uint64(0)
		for _, n := range b.Out {
			outTotal += n
		}
		tos := make([]uint64, 0, len(b.Out))
		for to := range b.Out {
			tos = append(tos, to)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
		for _, to := range tos {
			pct := 100.0
			if outTotal > 0 {
				pct = 100 * float64(b.Out[to]) / float64(outTotal)
			}
			fmt.Fprintf(&sb, "  -> %08x  %.2f%%\n", to, pct)
		}
		if b.ExitCount > 0 {
			fmt.Fprintf(&sb, "  -> exit      (%d threads)\n", b.ExitCount)
		}
	}
	return sb.String()
}
