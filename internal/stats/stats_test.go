package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeAccumulates(t *testing.T) {
	a := GPUStats{ArithInstr: 10, LSInstr: 5, TempAcc: 3, Threads: 100, RegistersUsed: 8}
	a.ClauseSizeHist[4] = 7
	b := GPUStats{ArithInstr: 1, CFInstr: 2, Threads: 28, RegistersUsed: 12}
	b.ClauseSizeHist[4] = 3
	b.ClauseSizeHist[8] = 1
	a.Merge(&b)
	if a.ArithInstr != 11 || a.CFInstr != 2 || a.Threads != 128 {
		t.Errorf("merge wrong: %+v", a)
	}
	if a.ClauseSizeHist[4] != 10 || a.ClauseSizeHist[8] != 1 {
		t.Errorf("hist merge wrong: %v", a.ClauseSizeHist)
	}
	if a.RegistersUsed != 12 {
		t.Errorf("registers should take max, got %d", a.RegistersUsed)
	}
}

func TestMixFractionsSumToOne(t *testing.T) {
	f := func(a, l, n, c uint16) bool {
		s := GPUStats{ArithInstr: uint64(a), LSInstr: uint64(l),
			NopInstr: uint64(n), CFInstr: uint64(c)}
		if s.TotalInstr() == 0 {
			fa, fl, fn, fc := s.MixFractions()
			return fa == 0 && fl == 0 && fn == 0 && fc == 0
		}
		fa, fl, fn, fc := s.MixFractions()
		sum := fa + fl + fn + fc
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataAccessFractionsSumToOne(t *testing.T) {
	s := GPUStats{TempAcc: 10, GRFRead: 20, GRFWrite: 5, ConstRead: 3, ROMRead: 2, MainMemAcc: 60}
	f := s.DataAccessFractions()
	var sum float64
	for _, v := range f {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
	if f[5] != 0.6 {
		t.Errorf("main memory share = %f, want 0.6", f[5])
	}
}

func TestClauseSizeStats(t *testing.T) {
	var s GPUStats
	// 10 clauses of size 2, 10 of size 8.
	s.ClauseSizeHist[2] = 10
	s.ClauseSizeHist[8] = 10
	if got := s.AvgClauseSize(); got != 5 {
		t.Errorf("avg = %f", got)
	}
	min, q1, med, q3, max := s.ClauseSizeQuartiles()
	if min != 2 || max != 8 {
		t.Errorf("min/max = %f/%f", min, max)
	}
	if q1 != 2 || q3 != 8 {
		t.Errorf("q1/q3 = %f/%f", q1, q3)
	}
	if med != 8 && med != 2 {
		t.Errorf("median = %f", med)
	}
	// Empty stats are all-zero.
	var empty GPUStats
	if a, b, c, d, e := empty.ClauseSizeQuartiles(); a+b+c+d+e != 0 {
		t.Error("empty quartiles not zero")
	}
}

func TestCFGMergeAndRender(t *testing.T) {
	g1 := NewCFG()
	b := g1.Block(0x70)
	b.ThreadsIn = 100
	b.WarpsIn = 25
	b.Diverged = 1
	b.Out[0xa0] = 98
	b.Out[0x330] = 2
	b.Terminator = "brc"

	g2 := NewCFG()
	b2 := g2.Block(0x70)
	b2.ThreadsIn = 50
	b2.WarpsIn = 13
	b2.Out[0xa0] = 50
	e := g2.Block(0xa0)
	e.ExitCount = 148

	g1.Merge(g2)
	blk := g1.Blocks[0x70]
	if blk.ThreadsIn != 150 || blk.WarpsIn != 38 || blk.Out[0xa0] != 148 {
		t.Errorf("merge wrong: %+v", blk)
	}
	if got := blk.DivergencePct(); got < 2.5 || got > 2.7 {
		t.Errorf("divergence pct = %f", got)
	}

	out := g1.Render()
	for _, want := range []string{"00000070", "dvg.", "-> 000000a0", "exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSystemStatsMergeAndString(t *testing.T) {
	a := SystemStats{PagesAccessed: 1, CtrlRegReads: 2, CtrlRegWrites: 3, IRQsAsserted: 4, ComputeJobs: 5, KernelLaunch: 6, TLBHits: 7, TLBWalks: 8}
	b := a
	a.Merge(&b)
	if a.ComputeJobs != 10 || a.KernelLaunch != 12 || a.TLBHits != 14 || a.TLBWalks != 16 {
		t.Errorf("merge wrong: %+v", a)
	}
	if !strings.Contains(a.String(), "jobs=10") || !strings.Contains(a.String(), "tlbHit=14") {
		t.Errorf("String() = %q", a.String())
	}
	if d := a.Sub(&b); d != b {
		t.Errorf("sub wrong: %+v", d)
	}
}
