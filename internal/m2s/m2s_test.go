package m2s_test

import (
	"testing"

	"mobilesim/internal/gpu"
	"mobilesim/internal/m2s"
)

const vecScaleSrc = `
kernel void vecscale(global float* a, global float* out, float s, int n) {
    int i = get_global_id(0);
    if (i < n) {
        out[i] = a[i] * s;
    }
}
`

func TestInterceptedRuntimeRunsKernels(t *testing.T) {
	c, err := m2s.New(64<<20, gpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 512
	in, err := c.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.CreateBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := c.WriteF32(in, vals); err != nil {
		t.Fatal(err)
	}
	k, err := c.BuildKernel(vecScaleSrc, "vecscale")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, in)
	k.SetArgBuffer(1, out)
	k.SetArgFloat(2, 3)
	k.SetArgInt(3, n)
	if err := c.Enqueue(k, [3]uint32{n, 1, 1}, [3]uint32{64, 1, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadF32(out, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != vals[i]*3 {
			t.Fatalf("out[%d] = %g", i, got[i])
		}
	}
	if c.KernelLaunches != 1 {
		t.Errorf("launches = %d", c.KernelLaunches)
	}
	if c.CPUTime == 0 {
		t.Error("runtime-side CPU time not accounted")
	}
}

// TestArchitecturalDifferences checks the properties that distinguish the
// baseline from the full-system stack: flat addressing (no page-table
// walks, so no page statistics) and interpreter-mode CPU copies.
func TestArchitecturalDifferences(t *testing.T) {
	c, err := m2s.New(64<<20, gpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in, _ := c.CreateBuffer(4 * 256)
	out, _ := c.CreateBuffer(4 * 256)
	if err := c.WriteF32(in, make([]float32, 256)); err != nil {
		t.Fatal(err)
	}
	k, err := c.BuildKernel(vecScaleSrc, "vecscale")
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, in)
	k.SetArgBuffer(1, out)
	k.SetArgFloat(2, 1)
	k.SetArgInt(3, 256)
	if err := c.Enqueue(k, [3]uint32{256, 1, 1}, [3]uint32{64, 1, 1}); err != nil {
		t.Fatal(err)
	}
	_, sys := c.Device().Stats()
	if sys.PagesAccessed != 0 {
		t.Errorf("flat address space should record no page accesses, got %d", sys.PagesAccessed)
	}
	if c.CPUInstret() == 0 {
		t.Error("runtime copies should run on the interpreter core")
	}
}
