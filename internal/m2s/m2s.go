// Package m2s implements the Multi2Sim-style comparator the paper
// evaluates against (§V-B): a standalone GPU simulator whose OpenCL calls
// are intercepted by a simulator-specific runtime rather than flowing
// through a real driver stack.
//
// The architectural differences to the full-system simulator are exactly
// the ones the paper attributes its results to:
//
//   - No GPU MMU in the execution path: buffers live in a flat address
//     space with translation off (so no page statistics, no fault model).
//   - No kernel driver, no job descriptors in memory, no interrupts: the
//     intercepted runtime hands the "GPU" work directly.
//   - CPU-side work (buffer marshalling) runs on a per-instruction-dispatch
//     interpreter core rather than a DBT engine, which is what makes its
//     driver-side runtime grow steeply with input size (Fig 9).
//
// It reuses the same shader-core execution engine, because Fig 8's point
// is that *GPU* throughput is comparable — the stacks around it differ.
package m2s

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mobilesim/internal/asm"
	"mobilesim/internal/clc"
	"mobilesim/internal/cpu"
	"mobilesim/internal/gpu"
	"mobilesim/internal/irq"
	"mobilesim/internal/mem"
)

// Context is the intercepted-runtime equivalent of cl.Context. It exposes
// the same surface the workloads need, so benchmarks can run unmodified on
// either stack.
type Context struct {
	ram   *mem.RAM
	bus   *mem.Bus
	alloc *mem.PageAllocator
	intc  *irq.Controller
	dev   *gpu.Device
	core  *cpu.Core // interpreter-mode core for runtime-side copies

	memcpyEntry uint64
	staging     uint64

	// KernelLaunches counts intercepted enqueues.
	KernelLaunches uint64

	// CPUTime is host wall-clock spent in the interpreter core simulating
	// runtime-side copies — the Fig 9 comparison metric.
	CPUTime time.Duration
}

// interpMemcpySource is the runtime's bounce-copy loop, executed on the
// interpreter engine (per-instruction dispatch).
const interpMemcpySource = `
memcpy:
    mov   x4, x0
    cmpi  x2, #8
    b.lo  tail
loop8:
    ldrx  x3, [x1]
    strx  x3, [x0]
    addi  x0, x0, #8
    addi  x1, x1, #8
    subi  x2, x2, #8
    cmpi  x2, #8
    b.hs  loop8
tail:
    cmpi  x2, #0
    b.eq  done
tloop:
    ldrb  x3, [x1]
    strb  x3, [x0]
    addi  x0, x0, #1
    addi  x1, x1, #1
    subi  x2, x2, #1
    cmpi  x2, #0
    b.ne  tloop
done:
    mov   x0, x4
    ret
`

const ramBase = 0x0
const stagingSize = 4 << 20

// New creates a standalone simulator context. gpuCfg mirrors the device
// shape used by the full-system runs so GPU-side work is comparable.
func New(ramSize uint64, gpuCfg gpu.Config) (*Context, error) {
	if ramSize == 0 {
		ramSize = 512 << 20
	}
	ram := mem.AcquireRAM(ramBase, ramSize)
	bus := mem.NewBus(ram)
	alloc, err := mem.NewPageAllocator(ramBase+(1<<20), ramSize-(1<<20))
	if err != nil {
		return nil, err
	}
	intc := irq.New()
	intc.Enable(irq.LineGPU)
	dev := gpu.NewDevice(gpuCfg, bus, intc, irq.LineGPU)
	dev.Start()

	core := cpu.NewCore(0, bus, intc)
	core.SetEngine(cpu.EngineInterp)

	c := &Context{ram: ram, bus: bus, alloc: alloc, intc: intc, dev: dev, core: core}

	// Load the runtime's copy loop.
	prog, err := assembleMemcpy()
	if err != nil {
		return nil, err
	}
	if err := bus.WriteBytes(ramBase+0x1000, prog.code); err != nil {
		return nil, err
	}
	c.memcpyEntry = prog.entry
	c.staging, err = alloc.AllocPages(stagingSize / mem.PageSize)
	if err != nil {
		return nil, err
	}

	// Flat memory: no translation table (root 0 = identity), no faults.
	if err := dev.WriteReg(gpu.RegAS0Transtab, 8, 0); err != nil {
		return nil, err
	}
	if err := dev.WriteReg(gpu.RegAS0Command, 8, 1); err != nil {
		return nil, err
	}
	if err := dev.WriteReg(gpu.RegIRQMask, 8, gpu.IRQJobDone|gpu.IRQJobFault); err != nil {
		return nil, err
	}
	return c, nil
}

// Close stops the device and recycles main memory (see mem.AcquireRAM):
// everything the run dirtied lies below the page allocator's high
// watermark (the memcpy routine and staging area sit below the 1 MiB
// heap base, which is always scrubbed too).
func (c *Context) Close() {
	c.dev.Close()
	dirty := uint64(1 << 20)
	if hw := c.alloc.HighWater(); hw > dirty {
		dirty = hw
	}
	c.ram.Recycle(dirty)
}

// Device exposes the underlying GPU (for statistics).
func (c *Context) Device() *gpu.Device { return c.dev }

// CPUInstret returns guest instructions retired by the runtime-side core.
func (c *Context) CPUInstret() uint64 { return c.core.Instret }

// Buffer is a flat-memory allocation.
type Buffer struct {
	VA   uint64
	Size int
}

// CreateBuffer allocates device-visible memory.
func (c *Context) CreateBuffer(size int) (*Buffer, error) {
	pages := (size + mem.PageSize - 1) / mem.PageSize
	if pages == 0 {
		pages = 1
	}
	pa, err := c.alloc.AllocPages(pages)
	if err != nil {
		return nil, err
	}
	return &Buffer{VA: pa, Size: size}, nil
}

func (c *Context) guestCopy(dst, src, n uint64) error {
	t0 := time.Now()
	_, err := c.core.CallRoutine(c.memcpyEntry, dst, src, n)
	c.CPUTime += time.Since(t0)
	return err
}

// WriteBuffer stages and copies host data in through the interpreter core.
func (c *Context) WriteBuffer(b *Buffer, data []byte) error {
	for off := 0; off < len(data); off += stagingSize {
		n := len(data) - off
		if n > stagingSize {
			n = stagingSize
		}
		if err := c.bus.WriteBytes(c.staging, data[off:off+n]); err != nil {
			return err
		}
		if err := c.guestCopy(b.VA+uint64(off), c.staging, uint64(n)); err != nil {
			return err
		}
	}
	return nil
}

// ReadBuffer copies data back out through the interpreter core.
func (c *Context) ReadBuffer(b *Buffer, n int) ([]byte, error) {
	out := make([]byte, n)
	for off := 0; off < n; off += stagingSize {
		cn := n - off
		if cn > stagingSize {
			cn = stagingSize
		}
		if err := c.guestCopy(c.staging, b.VA+uint64(off), uint64(cn)); err != nil {
			return nil, err
		}
		if err := c.bus.ReadBytes(c.staging, out[off:off+cn]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteF32 marshals floats into a buffer.
func (c *Context) WriteF32(b *Buffer, vals []float32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return c.WriteBuffer(b, buf)
}

// ReadF32 reads floats back.
func (c *Context) ReadF32(b *Buffer, n int) ([]float32, error) {
	raw, err := c.ReadBuffer(b, 4*n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

// Kernel is a compiled kernel held by the intercepted runtime. Unlike the
// full-system stack, the binary is pre-decoded host-side — Multi2Sim runs
// pre-built kernel binaries rather than JITing through a vendor stack.
type Kernel struct {
	ck    *clc.CompiledKernel
	binVA uint64
	args  []uint64
}

// BuildKernel compiles (with the fixed bundled toolchain, mirroring
// Multi2Sim's reliance on one frozen compiler) and loads a kernel.
func (c *Context) BuildKernel(src, name string) (*Kernel, error) {
	ck, err := clc.Compile(src, name, clc.Options{Version: "5.6"})
	if err != nil {
		return nil, err
	}
	binVA, err := c.alloc.AllocPages((len(ck.Binary) + mem.PageSize - 1) / mem.PageSize)
	if err != nil {
		return nil, err
	}
	if err := c.bus.WriteBytes(binVA, ck.Binary); err != nil {
		return nil, err
	}
	return &Kernel{ck: ck, binVA: binVA, args: make([]uint64, len(ck.Params))}, nil
}

// SetArgBuffer binds a buffer.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) { k.args[i] = b.VA }

// SetArgInt binds an int scalar.
func (k *Kernel) SetArgInt(i int, v int32) { k.args[i] = uint64(uint32(v)) }

// SetArgFloat binds a float scalar.
func (k *Kernel) SetArgFloat(i int, v float32) { k.args[i] = uint64(math.Float32bits(v)) }

// Enqueue launches the kernel: the runtime writes the descriptor and rings
// the device directly (no driver, no guest code, no interrupt handler —
// the host runtime spins on the register).
func (c *Context) Enqueue(k *Kernel, global, local [3]uint32) error {
	for i := 0; i < 3; i++ {
		if global[i] == 0 {
			global[i] = 1
		}
		if local[i] == 0 {
			local[i] = 1
		}
	}
	c.KernelLaunches++
	argVA, err := c.alloc.AllocPages(1)
	if err != nil {
		return err
	}
	argBuf := make([]byte, 8*len(k.args))
	for i, a := range k.args {
		binary.LittleEndian.PutUint64(argBuf[8*i:], a)
	}
	if len(argBuf) > 0 {
		if err := c.bus.WriteBytes(argVA, argBuf); err != nil {
			return err
		}
	}
	desc := &gpu.JobDescriptor{
		JobType:    gpu.JobTypeCompute,
		GlobalSize: global,
		LocalSize:  local,
		ShaderVA:   k.binVA,
		ShaderSize: uint32(len(k.ck.Binary)),
		ArgsVA:     argVA,
	}
	if k.ck.LocalBytes > 0 {
		lva, err := c.alloc.AllocPages((int(k.ck.LocalBytes)*c.dev.Config().ShaderCores + mem.PageSize - 1) / mem.PageSize)
		if err != nil {
			return err
		}
		desc.LocalMemVA = lva
		desc.LocalMemBytes = k.ck.LocalBytes
	}
	descVA, err := c.alloc.AllocPages(1)
	if err != nil {
		return err
	}
	if err := c.bus.WriteBytes(descVA, gpu.EncodeDescriptor(desc)); err != nil {
		return err
	}
	if err := c.dev.WriteReg(gpu.RegJS0Head, 8, descVA); err != nil {
		return err
	}
	if err := c.dev.WriteReg(gpu.RegJS0Command, 8, 1); err != nil {
		return err
	}
	// Host-side spin (no guest ISR).
	deadline := time.Now().Add(120 * time.Second)
	for {
		raw, err := c.dev.ReadReg(gpu.RegIRQRawstat, 8)
		if err != nil {
			return err
		}
		if raw != 0 {
			if err := c.dev.WriteReg(gpu.RegIRQClear, 8, raw); err != nil {
				return err
			}
			c.intc.Claim()
			if raw&gpu.IRQJobDone == 0 {
				return fmt.Errorf("m2s: GPU fault rawstat=%#x", raw)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("m2s: kernel timed out")
		}
		<-c.intc.WaitChan()
	}
}

type miniProg struct {
	code  []byte
	entry uint64
}

func assembleMemcpy() (*miniProg, error) {
	prog, err := asm.Assemble(interpMemcpySource, ramBase+0x1000)
	if err != nil {
		return nil, err
	}
	entry, err := prog.Entry("memcpy")
	if err != nil {
		return nil, err
	}
	return &miniProg{code: prog.Code, entry: entry}, nil
}
