// Package costmodel provides analytical runtime models mapping simulated
// execution statistics to relative runtimes on physical GPUs, for the
// cross-platform comparison of Fig 15. The paper measured the six SGEMM
// variants on real Mali-G71 and NVIDIA K20m hardware; neither exists
// here, so we model the first-order mechanisms governing each platform.
//
// The desktop model captures what makes desktop rankings diverge from
// mobile ones:
//
//   - 32-wide SIMT with a deep arithmetic pipeline: ALU work is nearly
//     free relative to memory.
//   - A wide GDDR interface whose effective bandwidth depends strongly on
//     coalescing: strided/transposed access patterns pay heavily.
//   - A large register file: register blocking raises ILP without the
//     occupancy collapse a mobile part suffers (so 2D register blocking —
//     the worst Mali variant — is competitive on desktop).
//   - On-chip shared memory with high bandwidth: local-memory tiling helps
//     but matters less than coalescing.
//
// The model consumes the *simulated* per-kernel statistics (instruction
// and access mixes from the Mali run) plus static pattern annotations, and
// produces a relative runtime. It is a ranking model, not a cycle model.
package costmodel

import "mobilesim/internal/stats"

// Model holds the cost coefficients (per-operation costs in arbitrary
// time units, normalised away by the harness).
type Model struct {
	// ALUCost is the per-arithmetic-instruction cost.
	ALUCost float64
	// CoalescedMemCost is the per-access DRAM cost for unit-stride access.
	CoalescedMemCost float64
	// UncoalescedPenalty multiplies DRAM cost for strided patterns.
	UncoalescedPenalty float64
	// SharedMemCost is the per-access shared/local memory cost.
	SharedMemCost float64
	// RegisterILPBonus scales down ALU cost per additional value of
	// register blocking (ILP exposure), up to RegisterILPCap.
	RegisterILPBonus float64
	RegisterILPCap   float64
	// LaunchOverhead is charged once per kernel launch.
	LaunchOverhead float64
}

// K20m returns coefficients for the paper's comparison GPU.
func K20m() Model {
	return Model{
		ALUCost:            0.05, // deep FP pipes: ALU almost free
		CoalescedMemCost:   1.0,
		UncoalescedPenalty: 6.0, // GDDR coalescing cliff
		SharedMemCost:      0.12,
		RegisterILPBonus:   0.15,
		RegisterILPCap:     4,
		LaunchOverhead:     20_000,
	}
}

// KernelProfile is the pattern annotation for one kernel variant — the
// properties a desktop GPU cares about that are not visible in aggregate
// counters.
type KernelProfile struct {
	// CoalescedFraction is the fraction of global accesses that are
	// unit-stride within a warp.
	CoalescedFraction float64
	// RegisterBlocking is the per-thread register tile factor (1 = none).
	RegisterBlocking float64
	// CacheHitFraction is the fraction of global accesses served by the
	// large on-chip cache hierarchy desktop GPUs have (and the Mali-G71
	// mostly lacks): register-blocked kernels re-reading matrix rows hit
	// heavily.
	CacheHitFraction float64
}

// DefaultProfile is the pattern annotation assumed for runs whose
// workload does not declare one (the SGEMM ladder rungs do; the Table II
// kernels and SLAM pipelines do not). The values describe a typical
// unremarkable compute kernel — mostly-coalesced global access, no
// register blocking, a modest cache hit rate — so the desktop estimate
// stays a usable ranking signal rather than degrading to zero or to a
// worst-case cliff.
func DefaultProfile() KernelProfile {
	return KernelProfile{CoalescedFraction: 0.8, RegisterBlocking: 1, CacheHitFraction: 0.3}
}

// Estimate produces a relative runtime for a kernel run with the given
// simulated statistics and pattern profile.
func (m Model) Estimate(gs *stats.GPUStats, prof KernelProfile, launches uint64) float64 {
	alu := float64(gs.ArithInstr) * m.ALUCost
	ilp := prof.RegisterBlocking
	if ilp > m.RegisterILPCap {
		ilp = m.RegisterILPCap
	}
	if ilp > 1 {
		alu *= 1 - m.RegisterILPBonus*(ilp-1)
	}
	coal := clamp01(prof.CoalescedFraction)
	miss := 1 - clamp01(prof.CacheHitFraction)
	dram := float64(gs.MainMemAcc) * miss * m.CoalescedMemCost *
		(coal + (1-coal)*m.UncoalescedPenalty)
	shared := float64(gs.LocalAcc) * m.SharedMemCost
	return alu + dram + shared + float64(launches)*m.LaunchOverhead
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
