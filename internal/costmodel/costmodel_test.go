package costmodel

import (
	"testing"

	"mobilesim/internal/stats"
)

func TestMobileGlobalTrafficDominates(t *testing.T) {
	m := MaliG71()
	memBound := stats.GPUStats{ArithInstr: 1000, GlobalLS: 1000}
	aluBound := stats.GPUStats{ArithInstr: 10000, GlobalLS: 10}
	if m.Estimate(&memBound) <= m.Estimate(&aluBound) {
		t.Error("global traffic should dominate mobile cost")
	}
}

func TestMobileRegisterPressurePenalisesGlobal(t *testing.T) {
	m := MaliG71()
	low := stats.GPUStats{GlobalLS: 1000, RegistersUsed: 8}
	high := stats.GPUStats{GlobalLS: 1000, RegistersUsed: 40}
	lo, hi := m.Estimate(&low), m.Estimate(&high)
	if hi <= lo {
		t.Errorf("register pressure should cost: %f vs %f", lo, hi)
	}
	if hi/lo < 2 {
		t.Errorf("latency exposure too weak: %f", hi/lo)
	}
}

func TestMobileLocalCheaperThanGlobal(t *testing.T) {
	m := MaliG71()
	global := stats.GPUStats{GlobalLS: 1000}
	local := stats.GPUStats{LocalLS: 1000}
	if m.Estimate(&local) >= m.Estimate(&global) {
		t.Error("local traffic should be cheaper than LPDDR traffic")
	}
}

func TestDesktopCoalescingCliff(t *testing.T) {
	d := K20m()
	gs := stats.GPUStats{MainMemAcc: 10000}
	coalesced := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1}, 0)
	strided := d.Estimate(&gs, KernelProfile{CoalescedFraction: 0}, 0)
	if strided/coalesced < 3 {
		t.Errorf("uncoalesced penalty too small: %f vs %f", strided, coalesced)
	}
}

func TestDesktopRegisterBlockingHelpsALU(t *testing.T) {
	d := K20m()
	gs := stats.GPUStats{ArithInstr: 100000}
	plain := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1, RegisterBlocking: 1}, 0)
	blocked := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1, RegisterBlocking: 4}, 0)
	if blocked >= plain {
		t.Error("register blocking should expose ILP on desktop")
	}
	// Capped: absurd blocking factors don't go negative.
	extreme := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1, RegisterBlocking: 100}, 0)
	if extreme <= 0 || extreme != blocked {
		t.Errorf("blocking bonus should cap: %f vs %f", extreme, blocked)
	}
}

func TestDesktopCacheHitsAbsorbTraffic(t *testing.T) {
	d := K20m()
	gs := stats.GPUStats{MainMemAcc: 10000}
	cold := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1}, 0)
	warm := d.Estimate(&gs, KernelProfile{CoalescedFraction: 1, CacheHitFraction: 0.9}, 0)
	if warm >= cold/5 {
		t.Errorf("cache hits should absorb DRAM cost: %f vs %f", warm, cold)
	}
}

func TestLaunchOverheadCharged(t *testing.T) {
	d := K20m()
	var empty stats.GPUStats
	if d.Estimate(&empty, KernelProfile{}, 10) != 10*d.LaunchOverhead {
		t.Error("launch overhead not charged per launch")
	}
}
