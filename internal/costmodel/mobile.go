package costmodel

import "mobilesim/internal/stats"

// MobileModel maps simulated Mali statistics to a relative runtime on a
// Mali-G71-class device. The paper's own conclusions calibrate it: on
// mobile platforms data movement dominates execution time and cost
// ([29] in the paper), external (LPDDR) traffic is far more expensive
// than core-local traffic, and a high register footprint cuts resident
// thread-group occupancy, leaving the core unable to hide main-memory
// latency — which is how desktop-style register blocking "triggers
// bottlenecks on mobile GPUs".
type MobileModel struct {
	// ALUCost is the per-arithmetic-instruction cost.
	ALUCost float64
	// GlobalMemCost is the per-access cost of main-memory (LPDDR) traffic.
	GlobalMemCost float64
	// LocalMemCost is the per-access cost of core-local storage.
	LocalMemCost float64
	// NopCost charges issue slots wasted on padding.
	NopCost float64
	// RegisterPressureKnee is the GRF footprint beyond which occupancy
	// halves; above it global traffic costs LatencyExposure times more
	// because too few quads remain resident to hide memory latency.
	RegisterPressureKnee uint64
	LatencyExposure      float64
}

// MaliG71 returns coefficients for the simulated device.
func MaliG71() MobileModel {
	return MobileModel{
		ALUCost:              0.25,
		GlobalMemCost:        8.0, // LPDDR: the dominant cost
		LocalMemCost:         1.0,
		NopCost:              0.12,
		RegisterPressureKnee: 24,
		LatencyExposure:      3.0,
	}
}

// Estimate produces a relative runtime from simulated counters.
func (m MobileModel) Estimate(gs *stats.GPUStats) float64 {
	g := float64(gs.GlobalLS) * m.GlobalMemCost
	if gs.RegistersUsed > m.RegisterPressureKnee {
		g *= m.LatencyExposure
	}
	return float64(gs.ArithInstr)*m.ALUCost +
		float64(gs.LocalLS)*m.LocalMemCost +
		float64(gs.NopInstr)*m.NopCost + g
}
