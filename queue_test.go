// Queue, registry and cancellation tests for the Workload API. These run
// with HostThreads 1 to keep kernel timing predictable for the
// cancellation deadlines — not for race avoidance: the guest memory model
// is race-clean at any HostThreads (the whole tree runs under -race in
// CI), and TestHostThreads4AllBenchmarksVerify covers the multi-core
// configuration.
package mobilesim_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilesim"
)

// queueTestConfig keeps GPU dispatch single-threaded (see file comment).
func queueTestConfig() mobilesim.Config {
	return mobilesim.Config{RAMSize: 64 << 20, HostThreads: 1, ShaderCores: 1}
}

// spinWorkload is a custom (test-registered) workload whose kernel runs
// long enough that cancellation must interrupt it mid-run: ~tens of
// seconds uncancelled on one host thread, versus a sub-second test.
type spinWorkload struct{}

const spinThreads = 256

const spinSrc = `
kernel void spin(global int* out, int iters) {
    int i = get_global_id(0);
    int acc = 0;
    for (int j = 0; j < iters; j++) {
        acc = acc + j;
    }
    out[i] = acc;
}
`

func (spinWorkload) Info() mobilesim.WorkloadInfo {
	return mobilesim.WorkloadInfo{
		Name: "test/spin", Kind: mobilesim.KindBenchmark,
		Description: "long-running kernel for cancellation tests",
	}
}

func (spinWorkload) Execute(ctx context.Context, s *mobilesim.Session, opt *mobilesim.RunOptions) (*mobilesim.RunResult, error) {
	iters := 1 << 20
	if opt.Scale > 0 {
		iters = opt.Scale
	}
	k, err := s.LoadKernel(spinSrc, "spin")
	if err != nil {
		return nil, err
	}
	buf, err := s.NewBuffer(4 * spinThreads)
	if err != nil {
		return nil, err
	}
	if err := k.SetArgs(buf, iters); err != nil {
		return nil, err
	}
	if err := k.Launch(ctx, mobilesim.Dim1(spinThreads), mobilesim.Dim1(4)); err != nil {
		return nil, err
	}
	return &mobilesim.RunResult{Workload: "test/spin", Verified: true}, nil
}

var registerSpin = sync.OnceValue(func() error {
	return mobilesim.Register(spinWorkload{})
})

func newQueueTestSession(t *testing.T) *mobilesim.Session {
	t.Helper()
	if err := registerSpin(); err != nil {
		t.Fatal(err)
	}
	sess, err := mobilesim.New(queueTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	return sess
}

// TestCancelMidKernel is the acceptance scenario: a context cancelled
// while a kernel is executing returns ctx.Err() within a bounded time
// (the clause-boundary soft-stop), and the session survives for a
// subsequent, verified run.
func TestCancelMidKernel(t *testing.T) {
	sess := newQueueTestSession(t)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	t0 := time.Now()
	_, err := sess.Run(ctx, "test/spin")
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	// Uncancelled the spin takes tens of seconds; the soft-stop must land
	// promptly after the 50ms cancel even on a loaded CI machine.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt clause-boundary stop", elapsed)
	}

	// The session must remain fully usable: run and verify a benchmark.
	res, err := sess.Run(context.Background(), "BinarySearch", mobilesim.WithScale(256))
	if err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
	if !res.Verified {
		t.Fatalf("post-cancellation run failed verification: %v", res.VerifyErr)
	}
}

// TestDeadlineMidKernel covers the timeout flavour of cancellation.
func TestDeadlineMidKernel(t *testing.T) {
	sess := newQueueTestSession(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := sess.Run(ctx, "test/spin"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSubmitInOrder checks the command queue's ordering contract: a later
// submission only runs after every earlier one completed.
func TestSubmitInOrder(t *testing.T) {
	sess := newQueueTestSession(t)
	ctx := context.Background()

	var pendings []*mobilesim.Pending
	for i := 0; i < 3; i++ {
		p, err := sess.Submit(ctx, "BinarySearch", mobilesim.WithScale(256))
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}

	last := pendings[len(pendings)-1]
	if res, err := last.Wait(); err != nil || !res.Verified {
		t.Fatalf("last submission: res %+v, err %v", res, err)
	}
	// In-order completion: once the last entry finished, every
	// predecessor must already be done.
	for i, p := range pendings[:len(pendings)-1] {
		select {
		case <-p.Done():
		default:
			t.Fatalf("submission %d not complete although a later one is", i)
		}
		if res, err := p.Wait(); err != nil || !res.Verified {
			t.Fatalf("submission %d: res %+v, err %v", i, res, err)
		}
	}

	// Per-run deltas are deterministic and identical across the three
	// identical runs; the cumulative session counters are their sum.
	r0, _ := pendings[0].Wait()
	r2, _ := pendings[2].Wait()
	if r0.Stats.GPU.TotalInstr() == 0 || r0.Stats.GPU.TotalInstr() != r2.Stats.GPU.TotalInstr() {
		t.Errorf("per-run GPU instruction deltas differ: %d vs %d",
			r0.Stats.GPU.TotalInstr(), r2.Stats.GPU.TotalInstr())
	}
}

// probeWorkload signals when its Execute actually starts, to observe
// queue ordering.
type probeWorkload struct{ started chan struct{} }

func (probeWorkload) Info() mobilesim.WorkloadInfo {
	return mobilesim.WorkloadInfo{Name: "test/probe", Kind: mobilesim.KindBenchmark}
}

func (p probeWorkload) Execute(ctx context.Context, s *mobilesim.Session, opt *mobilesim.RunOptions) (*mobilesim.RunResult, error) {
	close(p.started)
	return &mobilesim.RunResult{Verified: true}, nil
}

// TestCancelQueuedSubmission: cancelling a queued entry skips it without
// disturbing its predecessor, and without releasing its queue slot early
// — the successor must not overtake the still-running predecessor.
func TestCancelQueuedSubmission(t *testing.T) {
	sess := newQueueTestSession(t)
	bg := context.Background()

	spinCtx, stopSpin := context.WithCancel(bg)
	defer stopSpin()
	first, err := sess.Submit(spinCtx, "test/spin")
	if err != nil {
		t.Fatal(err)
	}

	queuedCtx, cancelQueued := context.WithCancel(bg)
	queued, err := sess.Submit(queuedCtx, "BinarySearch", mobilesim.WithScale(256))
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	after, err := sess.SubmitWorkload(bg, probeWorkload{started: started})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued entry while the spin still runs: it must complete
	// promptly with the context error, without waiting for the spin.
	cancelQueued()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued entry returned %v, want context.Canceled", err)
	}
	// The cancellation must not have released the queue slot: the
	// successor stays queued behind the still-running spin.
	select {
	case <-started:
		t.Fatal("successor started while its predecessor was still running")
	case <-time.After(200 * time.Millisecond):
	}

	// Now stop the spin; the successor must still run normally.
	stopSpin()
	if _, err := first.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("spin returned %v, want context.Canceled", err)
	}
	if res, err := after.Wait(); err != nil || !res.Verified {
		t.Fatalf("successor: res %+v, err %v", res, err)
	}
	select {
	case <-started:
	default:
		t.Fatal("successor completed without executing")
	}
}

// TestCloseDrainsQueue: Close soft-stops the in-flight run, fails queued
// entries with ErrClosed, and leaves the session consistently closed.
func TestCloseDrainsQueue(t *testing.T) {
	sess := newQueueTestSession(t)
	bg := context.Background()

	running, err := sess.Submit(bg, "test/spin")
	if err != nil {
		t.Fatal(err)
	}
	queued, err := sess.Submit(bg, "BinarySearch", mobilesim.WithScale(256))
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond) // let the spin start
	t0 := time.Now()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("Close took %v, want prompt mid-kernel stop", elapsed)
	}
	if _, err := running.Wait(); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("in-flight run returned %v, want ErrClosed", err)
	}
	if _, err := queued.Wait(); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("queued run returned %v, want ErrClosed", err)
	}
	if _, err := sess.Submit(bg, "BinarySearch"); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("Submit after Close returned %v, want ErrClosed", err)
	}
}

// TestWorkloadRegistryRoundTrip: every legacy entry point's name space is
// resolvable through the unified registry.
func TestWorkloadRegistryRoundTrip(t *testing.T) {
	var names []string
	for _, b := range mobilesim.Benchmarks() {
		names = append(names, b.Name) // legacy Session.Run(benchmark, scale)
	}
	names = append(names, mobilesim.Experiments()...) // legacy RunExperiment
	for _, v := range mobilesim.SgemmVariants() {     // legacy RunSgemm
		names = append(names, "sgemm6/"+strings.ToLower(v.Name))
	}
	// Legacy RunSLAM presets.
	names = append(names, "slam/standard", "slam/fast3", "slam/express")

	for _, name := range names {
		w, err := mobilesim.Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if got := w.Info().Name; got != name {
			t.Errorf("Lookup(%q).Info().Name = %q", name, got)
		}
	}

	// The listing covers the same namespace.
	listed := make(map[string]mobilesim.WorkloadKind)
	for _, info := range mobilesim.Workloads() {
		listed[info.Name] = info.Kind
	}
	for _, name := range names {
		if _, ok := listed[name]; !ok {
			t.Errorf("Workloads() missing %q", name)
		}
	}

	// Duplicate registration is rejected.
	if err := registerSpin(); err != nil {
		t.Fatal(err)
	}
	if err := mobilesim.Register(spinWorkload{}); err == nil {
		t.Error("duplicate Register succeeded")
	}
}

// TestRunStatsDelta: RunResult.Stats is the per-run delta, not the
// cumulative session snapshot (satellite fix), with the session scope
// still available via option and Session.Stats.
func TestRunStatsDelta(t *testing.T) {
	sess := newQueueTestSession(t)
	bg := context.Background()

	r1, err := sess.Run(bg, "BinarySearch", mobilesim.WithScale(256))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Run(bg, "BinarySearch", mobilesim.WithScale(256))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.System.ComputeJobs != r2.Stats.System.ComputeJobs {
		t.Errorf("per-run job deltas differ: %d vs %d",
			r1.Stats.System.ComputeJobs, r2.Stats.System.ComputeJobs)
	}
	cum := sess.Stats()
	if want := r1.Stats.System.ComputeJobs + r2.Stats.System.ComputeJobs; cum.System.ComputeJobs != want {
		t.Errorf("cumulative jobs %d, want sum of deltas %d", cum.System.ComputeJobs, want)
	}
	if cum.GPU.TotalInstr() != r1.Stats.GPU.TotalInstr()+r2.Stats.GPU.TotalInstr() {
		t.Errorf("cumulative instructions %d != %d + %d",
			cum.GPU.TotalInstr(), r1.Stats.GPU.TotalInstr(), r2.Stats.GPU.TotalInstr())
	}

	// The session-cumulative scope remains available per run.
	r3, err := sess.Run(bg, "BinarySearch",
		mobilesim.WithScale(256), mobilesim.WithStatsScope(mobilesim.StatsSession))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.System.ComputeJobs != cum.System.ComputeJobs+r1.Stats.System.ComputeJobs {
		t.Errorf("StatsSession scope: jobs %d, want cumulative %d",
			r3.Stats.System.ComputeJobs, cum.System.ComputeJobs+r1.Stats.System.ComputeJobs)
	}
}

// TestPerRunCFG: WithCFG collects a divergence CFG for one run on a
// session created without Config.CollectCFG.
func TestPerRunCFG(t *testing.T) {
	sess := newQueueTestSession(t)
	bg := context.Background()

	res, err := sess.Run(bg, "BFS", mobilesim.WithScale(64), mobilesim.WithCFG())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.CFG, "->") {
		t.Errorf("per-run CFG missing edges:\n%s", res.CFG)
	}
	// Collection was per-run: the session-level CFG stays off.
	if cfg := sess.CFG(); cfg != "" {
		t.Errorf("session CFG unexpectedly collected:\n%s", cfg)
	}
	plain, err := sess.Run(bg, "BFS", mobilesim.WithScale(64))
	if err != nil {
		t.Fatal(err)
	}
	if plain.CFG != "" {
		t.Error("CFG collected without WithCFG")
	}
}

// TestUnifiedKinds: one session runs a benchmark, a SLAM preset, a
// sgemm-ladder variant and an experiment through the same entry point.
func TestUnifiedKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four workload kinds")
	}
	sess := newQueueTestSession(t)
	bg := context.Background()

	bench, err := sess.Run(bg, "BinarySearch", mobilesim.WithScale(256))
	if err != nil || !bench.Verified {
		t.Fatalf("benchmark: %+v, %v", bench, err)
	}
	if bench.Kind != mobilesim.KindBenchmark {
		t.Errorf("benchmark kind %q", bench.Kind)
	}

	slamRes, err := sess.Run(bg, "slam/express")
	if err != nil {
		t.Fatalf("slam: %v", err)
	}
	if slamRes.Kind != mobilesim.KindSLAM || slamRes.SLAM == nil || slamRes.SLAM.KernelsRun == 0 {
		t.Errorf("slam result: %+v", slamRes)
	}

	sgemmRes, err := sess.Run(bg, "sgemm6/naive", mobilesim.WithScale(1))
	if err != nil || !sgemmRes.Verified {
		t.Fatalf("sgemm: %+v, %v", sgemmRes, err)
	}

	expRes, err := sess.Run(bg, "table2")
	if err != nil {
		t.Fatalf("experiment: %v", err)
	}
	if expRes.Kind != mobilesim.KindExperiment || expRes.Output == "" {
		t.Errorf("experiment result lacks output: %+v", expRes)
	}
}

// TestBatchMidRunCancellation: cancelling a batch interrupts the running
// job (soft-stop) and marks it Interrupted, distinct from Skipped.
func TestBatchMidRunCancellation(t *testing.T) {
	if err := registerSpin(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	batch := &mobilesim.Batch{
		Jobs: []mobilesim.BatchJob{
			{Benchmark: "test/spin"},
			{Benchmark: "BinarySearch", Scale: 256},
		},
		Workers: 1, // force the second job to queue behind the spin
		Config:  queueTestConfig(),
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	res, err := batch.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch returned %v, want context.Canceled", err)
	}
	if res.Interrupted != 1 {
		t.Errorf("Interrupted = %d, want 1 (jobs: %+v)", res.Interrupted, res.Jobs)
	}
	if !res.Jobs[0].Interrupted || !errors.Is(res.Jobs[0].Err, context.Canceled) {
		t.Errorf("job 0 not marked interrupted: %+v", res.Jobs[0])
	}
	if res.Skipped != 1 || res.Jobs[1].Interrupted {
		t.Errorf("job 1 should be skipped, not interrupted: %+v (skipped %d)",
			res.Jobs[1], res.Skipped)
	}
}
