package mobilesim

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mobilesim/internal/cl"
	"mobilesim/internal/costmodel"
	"mobilesim/internal/slam"
	"mobilesim/internal/workloads"
)

// This file is the unified Workload layer: one registry and one execution
// contract for everything the simulator can run — the Table II benchmark
// suite, the SLAMBench pipeline presets (Fig 14), the SGEMM tuning ladder
// (Fig 15) and the paper-evaluation experiments. Sessions execute
// workloads by name through Session.Run / Session.Submit; the legacy
// per-kind entry points (RunSLAM, RunSgemm, RunExperiment) survive as
// thin wrappers.

// WorkloadKind classifies a registered workload.
type WorkloadKind string

// Workload kinds.
const (
	KindBenchmark  WorkloadKind = "benchmark"  // Table II suite member
	KindSLAM       WorkloadKind = "slam"       // SLAMBench pipeline preset
	KindSgemm      WorkloadKind = "sgemm"      // SGEMM tuning-ladder variant
	KindExperiment WorkloadKind = "experiment" // paper table/figure harness
)

// WorkloadInfo describes a registered workload.
type WorkloadInfo struct {
	// Name is the registry key (e.g. "BFS", "slam/standard",
	// "sgemm6/naive", "fig7").
	Name string
	Kind WorkloadKind
	// Suite is the originating benchmark suite, when there is one.
	Suite string
	// Description is a one-line summary.
	Description string
	// Scale presets: SmallScale keeps tests fast, DefaultScale drives
	// benchmarks, PaperScale approximates the paper's input sizes. Zero
	// when the workload does not take an integer scale.
	SmallScale, DefaultScale, PaperScale int
}

// Workload is one runnable unit of work. Implementations must be safe for
// reuse: Execute may be called many times, on different Sessions.
//
// Execute runs entirely through the public Session API (or, for built-in
// workloads, session-internal equivalents); the Session serialises device
// access per operation, and the command queue serialises whole runs.
// Implementations must honour ctx: return ctx.Err() promptly once the
// context is cancelled (device operations such as Kernel.Launch already
// do, interrupting the running kernel at a clause boundary).
type Workload interface {
	Info() WorkloadInfo
	Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Workload)
)

// Register adds a workload to the global registry. It fails when the name
// is empty or already taken.
func Register(w Workload) error {
	name := w.Info().Name
	if name == "" {
		return fmt.Errorf("mobilesim: Register: empty workload name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("mobilesim: Register: workload %q already registered", name)
	}
	registry[name] = w
	return nil
}

func mustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Lookup resolves a workload by name. The error for an unknown name lists
// the registered names and suggests the nearest match.
func Lookup(name string) (Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if w, ok := registry[name]; ok {
		return w, nil
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	return nil, workloads.UnknownNameError("mobilesim", "workload", name, names)
}

// Workloads lists every registered workload sorted by name.
func Workloads() []WorkloadInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]WorkloadInfo, 0, len(registry))
	for _, w := range registry {
		out = append(out, w.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StatsScope selects what RunResult.Stats covers.
type StatsScope int

const (
	// StatsRun reports the per-run delta: the session statistics diffed
	// around the run. The default.
	StatsRun StatsScope = iota
	// StatsSession reports the session-cumulative snapshot at the end of
	// the run (the pre-PR-3 behaviour).
	StatsSession
)

// RunOptions is the resolved option set for one run. Callers construct it
// through RunOption values; Workload implementations read it.
type RunOptions struct {
	// Scale is the integer input scale; <= 0 selects the workload's
	// default.
	Scale int
	// Verify enables checking simulated output against the host-native
	// reference, for workload kinds that have one (default true).
	Verify bool
	// CollectCFG collects the clause-level divergence CFG for this run
	// and renders it into RunResult.CFG, even when the session was not
	// created with Config.CollectCFG.
	CollectCFG bool
	// StatsScope selects per-run delta (default) or session-cumulative
	// statistics for RunResult.Stats.
	StatsScope StatsScope
	// ExperimentScale selects input sizes for experiment workloads
	// (default ExperimentScaleDefault).
	ExperimentScale ExperimentScale
	// Output receives an experiment workload's rendered rows as they are
	// produced; nil captures them into RunResult.Output instead.
	Output io.Writer
}

// RunOption mutates a RunOptions.
type RunOption func(*RunOptions)

// WithScale sets the integer input scale (<= 0 keeps the default).
func WithScale(n int) RunOption { return func(o *RunOptions) { o.Scale = n } }

// WithVerify toggles output verification against the host-native
// reference (on by default). Turning it off also skips the native run, so
// RunResult.NativeDuration is zero and Verified false.
func WithVerify(on bool) RunOption { return func(o *RunOptions) { o.Verify = on } }

// WithCFG collects the divergence control-flow graph for this run and
// renders it into RunResult.CFG. On a session created with
// Config.CollectCFG the device graph is cumulative, so RunResult.CFG
// then covers every run since session start, not just this one.
func WithCFG() RunOption { return func(o *RunOptions) { o.CollectCFG = true } }

// WithStatsScope selects per-run delta or session-cumulative statistics
// for RunResult.Stats.
func WithStatsScope(sc StatsScope) RunOption { return func(o *RunOptions) { o.StatsScope = sc } }

// WithExperimentScale selects input sizes for experiment workloads.
func WithExperimentScale(sc ExperimentScale) RunOption {
	return func(o *RunOptions) { o.ExperimentScale = sc }
}

// WithOutput streams experiment output to w instead of capturing it into
// RunResult.Output.
func WithOutput(w io.Writer) RunOption { return func(o *RunOptions) { o.Output = w } }

func resolveOptions(opts []RunOption) *RunOptions {
	o := &RunOptions{Verify: true, ExperimentScale: ExperimentScaleDefault}
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// --- Benchmark workloads ---------------------------------------------------

// benchmarkWorkload adapts one Table II suite member.
type benchmarkWorkload struct{ spec *workloads.Spec }

func (b benchmarkWorkload) Info() WorkloadInfo {
	return WorkloadInfo{
		Name:        b.spec.Name,
		Kind:        KindBenchmark,
		Suite:       b.spec.Suite,
		Description: fmt.Sprintf("%s benchmark (paper input %s)", b.spec.Suite, b.spec.PaperInput),
		SmallScale:  b.spec.SmallScale, DefaultScale: b.spec.DefaultScale, PaperScale: b.spec.PaperScale,
	}
}

func (b benchmarkWorkload) Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error) {
	scale := opt.Scale
	if scale <= 0 {
		scale = b.spec.DefaultScale
	}
	inst := b.spec.Make(scale)
	var res *workloads.Result
	err := s.withCL(func(c *cl.Context) (e error) {
		res, e = inst.Run(ctx, c, b.spec.Name, opt.Verify)
		return
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Workload: b.spec.Name, Benchmark: b.spec.Name, Kind: KindBenchmark, Scale: scale,
		SimDuration:    res.SimDuration,
		NativeDuration: res.NativeDuration,
		Verified:       res.Verified,
		VerifyErr:      res.VerifyErr,
	}, nil
}

// --- SLAM workloads --------------------------------------------------------

// slamWorkload adapts one SLAMBench preset; scale multiplies the input
// resolution (1 = 64×64 for standard).
type slamWorkload struct {
	name   string
	preset func(scale int) slam.Config
}

func (w slamWorkload) Info() WorkloadInfo {
	return WorkloadInfo{
		Name: w.name, Kind: KindSLAM, Suite: "SLAMBench",
		Description: "KFusion-style dense-SLAM pipeline (Fig 14 preset)",
		SmallScale:  1, DefaultScale: 1, PaperScale: 4,
	}
}

func (w slamWorkload) Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error) {
	scale := opt.Scale
	if scale <= 0 {
		scale = 1
	}
	return runSLAMConfig(ctx, s, w.name, scale, w.preset(scale))
}

// runSLAMConfig is the shared SLAM execution path (registry presets and
// the legacy RunSLAM wrapper with its arbitrary Config).
func runSLAMConfig(ctx context.Context, s *Session, name string, scale int, cfg slam.Config) (*RunResult, error) {
	var m *SLAMMetrics
	t0 := time.Now()
	err := s.withCL(func(c *cl.Context) (e error) {
		m, e = slam.Run(ctx, c, cfg)
		return
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Workload: name, Benchmark: name, Kind: KindSLAM, Scale: scale,
		SimDuration: time.Since(t0),
		SLAM:        m,
	}, nil
}

// --- SGEMM tuning-ladder workloads -----------------------------------------

// sgemmWorkload adapts one rung of the Fig 15 optimisation ladder. Scale
// is the matrix dimension in units of 16 (the ladder's tile size), so
// scale 4 is a 64×64×64 multiply.
type sgemmWorkload struct{ v workloads.SgemmVariant }

func sgemmWorkloadName(v workloads.SgemmVariant) string {
	return "sgemm6/" + strings.ToLower(v.Name)
}

func (w sgemmWorkload) Info() WorkloadInfo {
	return WorkloadInfo{
		Name: sgemmWorkloadName(w.v), Kind: KindSgemm, Suite: "myGEMM",
		Description: fmt.Sprintf("SGEMM ladder step %d (%s), scale = dim/16", w.v.ID, w.v.Name),
		SmallScale:  1, DefaultScale: 4, PaperScale: 16,
	}
}

// kernelProfile hands the variant's access-pattern annotation to the
// desktop cost model, so RunResult.Modeled reproduces the Fig 15
// per-rung desktop estimates instead of using the generic default.
func (w sgemmWorkload) kernelProfile() costmodel.KernelProfile { return w.v.Profile }

func (w sgemmWorkload) Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error) {
	scale := opt.Scale
	if scale <= 0 {
		scale = 4
	}
	dim := 16 * scale
	a, b := workloads.SgemmInputs(dim, dim, dim)
	res := &RunResult{
		Workload:  sgemmWorkloadName(w.v),
		Benchmark: sgemmWorkloadName(w.v),
		Kind:      KindSgemm, Scale: scale,
	}
	var got []float32
	t0 := time.Now()
	err := s.withCL(func(c *cl.Context) (e error) {
		got, e = workloads.RunSgemmVariant(ctx, c, w.v, a, b, dim, dim, dim)
		return
	})
	if err != nil {
		return nil, err
	}
	res.SimDuration = time.Since(t0)
	if opt.Verify {
		t1 := time.Now()
		want := workloads.SgemmNative(a, b, dim, dim, dim)
		res.NativeDuration = time.Since(t1)
		if err := workloads.Compare(got, want, 1e-2); err != nil {
			res.VerifyErr = fmt.Errorf("%s: verify: %w", res.Workload, err)
		} else {
			res.Verified = true
		}
	}
	return res, nil
}

// --- Registration ----------------------------------------------------------

func init() {
	for _, spec := range workloads.All() {
		mustRegister(benchmarkWorkload{spec: spec})
	}
	mustRegister(slamWorkload{name: "slam/standard", preset: slam.Standard})
	mustRegister(slamWorkload{name: "slam/fast3", preset: slam.Fast3})
	mustRegister(slamWorkload{name: "slam/express", preset: slam.Express})
	for _, v := range workloads.SgemmVariants() {
		mustRegister(sgemmWorkload{v: v})
	}
}

// --- Legacy per-kind wrappers and re-exports -------------------------------

// SLAMConfig is one SLAMBench pipeline preset (resolution, pyramid
// levels, ICP iterations, TSDF volume, frame count).
type SLAMConfig = slam.Config

// SLAMMetrics summarises one SLAM pipeline run.
type SLAMMetrics = slam.Metrics

// SLAMStandard returns the baseline KFusion configuration at the given
// resolution scale (1 = 64×64 input).
func SLAMStandard(scale int) SLAMConfig { return slam.Standard(scale) }

// SLAMFast3 returns the reduced-accuracy preset.
func SLAMFast3(scale int) SLAMConfig { return slam.Fast3(scale) }

// SLAMExpress returns the fastest, least accurate preset.
func SLAMExpress(scale int) SLAMConfig { return slam.Express(scale) }

// RunSLAM executes the dense-SLAM pipeline on this session for
// cfg.Frames synthetic frames (the Fig 14 workflow), through the
// session's command queue.
//
// Deprecated: use Session.Run(ctx, "slam/standard", ...) (or the other
// presets) for the unified path; RunSLAM remains for custom SLAMConfig
// values.
func (s *Session) RunSLAM(cfg SLAMConfig) (*SLAMMetrics, error) {
	//simlint:allow ctxflow -- deprecated pre-ctx shim kept for compatibility; use Session.Run(ctx, ...)
	res, err := s.RunWorkload(context.Background(), configSLAMWorkload{cfg: cfg})
	if err != nil {
		return nil, err
	}
	return res.SLAM, nil
}

// configSLAMWorkload wraps an arbitrary SLAMConfig as an unregistered
// workload so legacy RunSLAM rides the same queue as everything else.
type configSLAMWorkload struct{ cfg slam.Config }

func (w configSLAMWorkload) Info() WorkloadInfo {
	return WorkloadInfo{Name: "slam/" + w.cfg.Name, Kind: KindSLAM, Suite: "SLAMBench"}
}

func (w configSLAMWorkload) Execute(ctx context.Context, s *Session, opt *RunOptions) (*RunResult, error) {
	return runSLAMConfig(ctx, s, "slam/"+w.cfg.Name, 0, w.cfg)
}

// SgemmVariant is one step of the desktop-GPU SGEMM optimisation ladder
// (naive, coalesced, tiled, …) evaluated in Fig 15.
type SgemmVariant = workloads.SgemmVariant

// SgemmVariants returns the six tuning-ladder variants in order.
func SgemmVariants() []SgemmVariant { return workloads.SgemmVariants() }

// SgemmInputs builds deterministic m×k and k×n input matrices.
func SgemmInputs(m, n, k int) (a, b []float32) { return workloads.SgemmInputs(m, n, k) }

// SgemmNative computes the host-native reference product.
func SgemmNative(a, b []float32, m, n, k int) []float32 {
	return workloads.SgemmNative(a, b, m, n, k)
}

// RunSgemm executes one SGEMM variant on this session and returns the
// m×n result matrix.
//
// Deprecated: use Session.Run(ctx, "sgemm6/<variant>", ...) for the
// unified path; RunSgemm remains for arbitrary shapes and inputs.
func (s *Session) RunSgemm(v SgemmVariant, a, b []float32, m, n, k int) ([]float32, error) {
	var out []float32
	err := s.withCL(func(c *cl.Context) (e error) {
		//simlint:allow ctxflow -- deprecated pre-ctx shim kept for compatibility; use Session.Run(ctx, ...)
		out, e = workloads.RunSgemmVariant(context.Background(), c, v, a, b, m, n, k)
		return
	})
	return out, err
}

// MobileCostModel is the analytical Mali-style cost model: main-memory
// traffic dominates, local memory is backed by the same L2.
type MobileCostModel = costmodel.MobileModel

// DesktopCostModel is the analytical discrete-GPU cost model: dedicated
// high-bandwidth memory, coalescing and occupancy effects.
type DesktopCostModel = costmodel.Model

// KernelProfile carries the per-kernel knobs the desktop model needs.
type KernelProfile = costmodel.KernelProfile

// MaliG71 returns the mobile cost model parameterised for the paper's
// Mali-G71.
func MaliG71() MobileCostModel { return costmodel.MaliG71() }

// K20m returns the desktop cost model parameterised for a Tesla K20m.
func K20m() DesktopCostModel { return costmodel.K20m() }

// DefaultKernelProfile returns the access-pattern annotation assumed for
// workloads that do not declare one — what RunResult.Modeled's desktop
// estimate uses outside the SGEMM ladder.
func DefaultKernelProfile() KernelProfile { return costmodel.DefaultProfile() }
