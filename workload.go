package mobilesim

import (
	"mobilesim/internal/costmodel"
	"mobilesim/internal/slam"
	"mobilesim/internal/workloads"
)

// This file re-exports the application-study toolkits — the SLAMBench
// pipeline (Fig 14), the six-step SGEMM tuning ladder (Fig 15) and the
// analytical cost models (§V-C) — so studies run entirely through the
// facade.

// SLAMConfig is one SLAMBench pipeline preset (resolution, pyramid
// levels, ICP iterations, TSDF volume, frame count).
type SLAMConfig = slam.Config

// SLAMMetrics summarises one SLAM pipeline run.
type SLAMMetrics = slam.Metrics

// SLAMStandard returns the baseline KFusion configuration at the given
// resolution scale (1 = 64×64 input).
func SLAMStandard(scale int) SLAMConfig { return slam.Standard(scale) }

// SLAMFast3 returns the reduced-accuracy preset.
func SLAMFast3(scale int) SLAMConfig { return slam.Fast3(scale) }

// SLAMExpress returns the fastest, least accurate preset.
func SLAMExpress(scale int) SLAMConfig { return slam.Express(scale) }

// RunSLAM executes the dense-SLAM pipeline on this session for
// cfg.Frames synthetic frames (the Fig 14 workflow).
func (s *Session) RunSLAM(cfg SLAMConfig) (*SLAMMetrics, error) {
	var m *SLAMMetrics
	err := s.locked(func() (err error) {
		m, err = slam.Run(s.ctx, cfg)
		return
	})
	return m, err
}

// SgemmVariant is one step of the desktop-GPU SGEMM optimisation ladder
// (naive, coalesced, tiled, …) evaluated in Fig 15.
type SgemmVariant = workloads.SgemmVariant

// SgemmVariants returns the six tuning-ladder variants in order.
func SgemmVariants() []SgemmVariant { return workloads.SgemmVariants() }

// SgemmInputs builds deterministic m×k and k×n input matrices.
func SgemmInputs(m, n, k int) (a, b []float32) { return workloads.SgemmInputs(m, n, k) }

// SgemmNative computes the host-native reference product.
func SgemmNative(a, b []float32, m, n, k int) []float32 {
	return workloads.SgemmNative(a, b, m, n, k)
}

// RunSgemm executes one SGEMM variant on this session and returns the
// m×n result matrix.
func (s *Session) RunSgemm(v SgemmVariant, a, b []float32, m, n, k int) ([]float32, error) {
	var out []float32
	err := s.locked(func() (err error) {
		out, err = workloads.RunSgemmVariant(s.ctx, v, a, b, m, n, k)
		return
	})
	return out, err
}

// MobileCostModel is the analytical Mali-style cost model: main-memory
// traffic dominates, local memory is backed by the same L2.
type MobileCostModel = costmodel.MobileModel

// DesktopCostModel is the analytical discrete-GPU cost model: dedicated
// high-bandwidth memory, coalescing and occupancy effects.
type DesktopCostModel = costmodel.Model

// KernelProfile carries the per-kernel knobs the desktop model needs.
type KernelProfile = costmodel.KernelProfile

// MaliG71 returns the mobile cost model parameterised for the paper's
// Mali-G71.
func MaliG71() MobileCostModel { return costmodel.MaliG71() }

// K20m returns the desktop cost model parameterised for a Tesla K20m.
func K20m() DesktopCostModel { return costmodel.K20m() }
