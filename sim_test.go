// Facade tests: single-session runs, the 8-way concurrent Batch, and the
// failure paths (bad Config, JIT errors, use-after-Close, cancellation).
package mobilesim_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mobilesim"
)

const axpbSrc = `
kernel void axpb(global float* x, global float* y, float a, float b, int n) {
    int i = get_global_id(0);
    if (i < n) {
        y[i] = a * x[i] + b;
    }
}
`

// smallScale looks up a benchmark's test-sized input scale.
func smallScale(t *testing.T, name string) int {
	t.Helper()
	for _, b := range mobilesim.Benchmarks() {
		if b.Name == name {
			return b.SmallScale
		}
	}
	t.Fatalf("benchmark %q not registered", name)
	return 0
}

func TestSessionKernelRoundTrip(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const n = 256
	xs := make([]float32, n)
	for i := range xs {
		xs[i] = float32(i)
	}
	bx, err := sess.NewBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	by, err := sess.NewBuffer(4 * n)
	if err != nil {
		t.Fatal(err)
	}
	if err := bx.WriteF32(nil, xs); err != nil {
		t.Fatal(err)
	}
	k, err := sess.LoadKernel(axpbSrc, "axpb")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgs(bx, by, float32(3.0), float32(1.0), n); err != nil {
		t.Fatal(err)
	}
	if err := k.Launch(bg, mobilesim.Dim1(n), mobilesim.Dim1(64)); err != nil {
		t.Fatal(err)
	}
	ys, err := by.ReadF32(nil, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ys {
		want := 3.0*xs[i] + 1.0
		if ys[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, ys[i], want)
		}
	}

	st := sess.Stats()
	if st.GPU.TotalInstr() == 0 || st.GPU.Threads != n {
		t.Errorf("GPU stats: instr %d, threads %d (want %d)", st.GPU.TotalInstr(), st.GPU.Threads, n)
	}
	if st.System.ComputeJobs != 1 || st.System.IRQsAsserted == 0 {
		t.Errorf("system stats: jobs %d, IRQs %d", st.System.ComputeJobs, st.System.IRQsAsserted)
	}
	if st.GuestInstructions == 0 {
		t.Error("driver executed no guest instructions")
	}
}

func TestSessionRunBenchmark(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	res, err := sess.Run(bg, "BinarySearch", mobilesim.WithScale(smallScale(t, "BinarySearch")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("verification failed: %v", res.VerifyErr)
	}
	if res.Stats.GPU.TotalInstr() == 0 || res.Stats.System.ComputeJobs == 0 {
		t.Errorf("empty stats: instr %d, jobs %d",
			res.Stats.GPU.TotalInstr(), res.Stats.System.ComputeJobs)
	}
}

func TestSessionRunUnknownBenchmark(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	err = nil
	_, err = sess.Run(bg, "NoSuchBenchmark")
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
	// The error must be actionable: it lists the registry (satellite:
	// mirror Config.validate's compiler-version error).
	if !strings.Contains(err.Error(), "BinarySearch") {
		t.Errorf("unknown-workload error does not list names: %v", err)
	}
	// A near-miss also gets a nearest-match suggestion.
	_, err = sess.Run(bg, "binarysearch")
	if err == nil || !strings.Contains(err.Error(), `did you mean "BinarySearch"`) {
		t.Errorf("near-miss error lacks suggestion: %v", err)
	}
}

func TestSessionCFGCollection(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{CollectCFG: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Run(bg, "BFS", mobilesim.WithScale(smallScale(t, "BFS"))); err != nil {
		t.Fatal(err)
	}
	if cfg := sess.CFG(); !strings.Contains(cfg, "->") {
		t.Errorf("CFG render missing edges:\n%s", cfg)
	}
}

// TestBatch8Way is the acceptance scenario: eight independent sessions
// across a bounded pool, with aggregated statistics.
func TestBatch8Way(t *testing.T) {
	names := []string{
		"BinarySearch", "BitonicSort", "MatrixTranspose", "Reduction",
		"DCT", "DwtHaar1D", "ScanLargeArrays", "SobelFilter",
	}
	batch := &mobilesim.Batch{Jobs: jobs8(t, names), Workers: 4}
	res, err := batch.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(names) || res.Failed != 0 || res.Skipped != 0 {
		for _, jr := range res.Jobs {
			if jr.Err != nil {
				t.Logf("job %d (%s): %v", jr.Index, jr.Job.Benchmark, jr.Err)
			}
		}
		t.Fatalf("batch: %d completed, %d failed, %d skipped; want %d/0/0",
			res.Completed, res.Failed, res.Skipped, len(names))
	}

	var wantInstr, wantJobs uint64
	for _, jr := range res.Jobs {
		if jr.Result == nil || !jr.Result.Verified {
			t.Fatalf("job %d (%s) did not verify", jr.Index, jr.Job.Benchmark)
		}
		wantInstr += jr.Result.Stats.GPU.TotalInstr()
		wantJobs += jr.Result.Stats.System.ComputeJobs
	}
	if got := res.Aggregate.GPU.TotalInstr(); got != wantInstr {
		t.Errorf("aggregate GPU instructions %d, want %d", got, wantInstr)
	}
	if got := res.Aggregate.System.ComputeJobs; got != wantJobs {
		t.Errorf("aggregate compute jobs %d, want %d", got, wantJobs)
	}
	if res.Aggregate.GuestInstructions == 0 {
		t.Error("aggregate lost guest instruction counts")
	}
}

// jobs8 builds one small-scale job per benchmark name.
func jobs8(t *testing.T, names []string) []mobilesim.BatchJob {
	t.Helper()
	jobs := make([]mobilesim.BatchJob, len(names))
	for i, n := range names {
		jobs[i] = mobilesim.BatchJob{Benchmark: n, Scale: smallScale(t, n)}
	}
	return jobs
}

func TestBatchEmpty(t *testing.T) {
	res, err := (&mobilesim.Batch{}).Run(context.Background())
	if err != nil || len(res.Jobs) != 0 {
		t.Fatalf("empty batch: res %+v, err %v", res, err)
	}
}

func TestBadConfig(t *testing.T) {
	cases := map[string]mobilesim.Config{
		"tiny RAM":         {RAMSize: 1 << 20},
		"negative CPUs":    {CPUCores: -1},
		"negative shaders": {ShaderCores: -2},
		"negative threads": {HostThreads: -8},
		"bad compiler":     {CompilerVersion: "9.9"},
	}
	for name, cfg := range cases {
		if _, err := mobilesim.New(cfg); err == nil {
			t.Errorf("%s: New accepted bad config %+v", name, cfg)
		}
	}

	// A bad per-job config must fail the whole batch up front, before
	// any session boots.
	bad := mobilesim.Config{CompilerVersion: "9.9"}
	batch := &mobilesim.Batch{Jobs: []mobilesim.BatchJob{
		{Benchmark: "BinarySearch", Scale: 1, Config: &bad},
	}}
	if _, err := batch.Run(context.Background()); err == nil {
		t.Error("batch accepted job with bad config")
	}
}

func TestLoadKernelJITError(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.LoadKernel("kernel void broken(global float* x) {", "broken"); err == nil {
		t.Error("expected JIT error for unterminated kernel")
	}
	if _, err := sess.LoadKernel(axpbSrc, "nonexistent"); err == nil {
		t.Error("expected error for missing kernel name")
	}
}

func TestUseAfterClose(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := sess.NewBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sess.LoadKernel(axpbSrc, "axpb")
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Stats()
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if after := sess.Stats(); after != before {
		t.Errorf("Stats after Close = %+v, want final snapshot %+v", after, before)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := sess.Run(bg, "BinarySearch", mobilesim.WithScale(1)); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("Run after Close: %v, want ErrClosed", err)
	}
	if _, err := sess.LoadKernel(axpbSrc, "axpb"); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("LoadKernel after Close: %v, want ErrClosed", err)
	}
	if _, err := sess.NewBuffer(64); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("NewBuffer after Close: %v, want ErrClosed", err)
	}
	if err := buf.WriteF32(nil, []float32{1}); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("Buffer.WriteF32 after Close: %v, want ErrClosed", err)
	}
	if err := k.Launch(bg, mobilesim.Dim1(1), mobilesim.Dim1(1)); !errors.Is(err, mobilesim.ErrClosed) {
		t.Errorf("Kernel.Launch after Close: %v, want ErrClosed", err)
	}
}

func TestCrossSessionBufferRejected(t *testing.T) {
	a, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := mobilesim.New(mobilesim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	foreign, err := a.NewBuffer(64)
	if err != nil {
		t.Fatal(err)
	}
	k, err := b.LoadKernel(axpbSrc, "axpb")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgs(foreign); err == nil ||
		!strings.Contains(err.Error(), "different session") {
		t.Errorf("SetArgs accepted a foreign buffer (err = %v)", err)
	}
}

func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the batch starts: every job must be skipped

	batch := &mobilesim.Batch{Jobs: jobs8(t, []string{"BinarySearch", "Reduction", "DwtHaar1D"})}
	res, err := batch.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if res.Skipped != 3 || res.Completed != 0 {
		t.Fatalf("batch: %d skipped, %d completed; want 3 skipped", res.Skipped, res.Completed)
	}
	for _, jr := range res.Jobs {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Errorf("job %d err %v, want context.Canceled", jr.Index, jr.Err)
		}
	}
}

// TestHostThreads4AllBenchmarksVerify is the acceptance test for the
// race-clean guest memory model at the facade level: one session with
// four concurrent virtual cores runs every Table II workload and every
// result must verify against its host-native reference. The exact
// per-workload counter values for this configuration are pinned by the
// golden-stats test in internal/workloads; here the per-run deltas are
// sanity-checked so a facade-level stats regression cannot hide behind
// the internal harness.
func TestHostThreads4AllBenchmarksVerify(t *testing.T) {
	sess, err := mobilesim.New(mobilesim.Config{RAMSize: 256 << 20, HostThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, b := range mobilesim.Benchmarks() {
		res, err := sess.Run(context.Background(), b.Name, mobilesim.WithScale(b.SmallScale))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !res.Verified {
			t.Errorf("%s: verified = false at HostThreads 4: %v", b.Name, res.VerifyErr)
		}
		if res.Stats.GPU.Threads == 0 || res.Stats.System.ComputeJobs == 0 {
			t.Errorf("%s: empty per-run stats delta: %+v", b.Name, res.Stats)
		}
		if res.Stats.System.TLBHits+res.Stats.System.TLBWalks == 0 {
			t.Errorf("%s: GPU MMU traffic not accounted", b.Name)
		}
	}
}
